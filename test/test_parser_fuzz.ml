(** Parser robustness fuzzing: arbitrary byte strings and mutated
    versions of the shipped [.chase] corpora must never escape as an
    unstructured exception — every entry point returns [Ok] or a
    structured error carrying a 1-based line number. *)

open Chase
open Test_util

(* Every parse error is produced by the lexer/parser's [fail], which
   prefixes "line %d: ". *)
let has_line_number msg =
  String.length msg > 5
  && String.sub msg 0 5 = "line "
  && (match msg.[5] with '0' .. '9' -> true | _ -> false)

let entry_points =
  [
    ("parse_program_full", fun s -> Result.map ignore (Parser.parse_program_full s));
    ("parse_program", fun s -> Result.map ignore (Parser.parse_program s));
    ("parse_rules", fun s -> Result.map ignore (Parser.parse_rules s));
    ("parse_database", fun s -> Result.map ignore (Parser.parse_database s));
  ]

(** [Ok _], or [Error] with a line number; anything else is a bug. *)
let structured src =
  List.for_all
    (fun (name, parse) ->
      match parse src with
      | Ok () -> true
      | Error msg ->
        has_line_number msg
        || QCheck.Test.fail_reportf
             "%s: error without a line number: %S (input %S)" name msg src
      | exception e ->
        QCheck.Test.fail_reportf "%s: raised %s on %S" name
          (Printexc.to_string e) src)
    entry_points

(* Arbitrary bytes, all 256 values, biased toward short inputs. *)
let random_bytes_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 160))

let fuzz_random_bytes =
  qcheck ~count:1000 "random bytes never crash the parser"
    (QCheck.make ~print:(Fmt.str "%S") random_bytes_gen)
    structured

(* Syntax-shaped noise: tokens the grammar knows, glued randomly.  This
   reaches deeper parser states than uniform bytes do. *)
let token_soup_gen =
  QCheck.Gen.(
    let token =
      oneofl
        [ "p"; "q"; "X"; "Y"; "_Z"; "a"; "0"; "("; ")"; ","; "."; "->";
          "="; ":"; ":-"; "%"; "#"; " "; "\n"; "\t"; "e(X, Y)"; "-> p(X)." ]
    in
    map (String.concat "") (list_size (int_range 0 30) token))

let fuzz_token_soup =
  qcheck ~count:1000 "token soup never crashes the parser"
    (QCheck.make ~print:(Fmt.str "%S") token_soup_gen)
    structured

(* Mutations of real corpus files: flip, insert, delete and truncate at
   random positions.  A valid file nearby is the best source of inputs
   that get far into the grammar before going wrong. *)
let corpora =
  lazy
    [
      read_data "divergent_zoo.chase";
      read_data "university.chase";
      read_data "genealogy.chase";
    ]

type mutation =
  | Flip of int * char
  | Insert of int * char
  | Delete of int
  | Truncate of int

let apply_mutation src = function
  | Flip (i, c) when String.length src > 0 ->
    let i = i mod String.length src in
    let b = Bytes.of_string src in
    Bytes.set b i c;
    Bytes.to_string b
  | Insert (i, c) ->
    let i = i mod (String.length src + 1) in
    String.sub src 0 i ^ String.make 1 c ^ String.sub src i (String.length src - i)
  | Delete i when String.length src > 0 ->
    let i = i mod String.length src in
    String.sub src 0 i ^ String.sub src (i + 1) (String.length src - i - 1)
  | Truncate i when String.length src > 0 ->
    String.sub src 0 (i mod String.length src)
  | _ -> src

let mutation_gen =
  QCheck.Gen.(
    let pos = int_range 0 10_000 in
    let chr = map Char.chr (int_range 0 255) in
    oneof
      [
        map2 (fun i c -> Flip (i, c)) pos chr;
        map2 (fun i c -> Insert (i, c)) pos chr;
        map (fun i -> Delete i) pos;
        map (fun i -> Truncate i) pos;
      ])

let mutated_corpus_gen =
  QCheck.Gen.(
    map2
      (fun which muts ->
        let base = List.nth (Lazy.force corpora) which in
        List.fold_left apply_mutation base muts)
      (int_range 0 2)
      (list_size (int_range 1 8) mutation_gen))

let fuzz_mutated_corpora =
  qcheck ~count:500 "mutated corpus files never crash the parser"
    (QCheck.make ~print:(Fmt.str "%S") mutated_corpus_gen)
    structured

(* A few deterministic regressions: inputs that historically exercise
   awkward lexer/parser states. *)
let test_edge_inputs () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (Fmt.str "structured on %S" src) true
        (structured src))
    [
      ""; "."; "->"; "-> ."; "p("; "p(X"; "p(X,"; "p(X)."; "p(X) ->";
      "p(X) -> q(X)"; ":"; "name:"; "name: ->"; "p() -> q().";
      "p(X) :- q(X)."; "X(a)."; "p(X) -> X = Y."; "p(X) -> q(X), .";
      "% only a comment"; "# only a comment"; "\xff\xfe\x00";
      "p(a).\np(b).\nbroken(";
      String.make 10_000 '(';
      "p(" ^ String.concat ", " (List.init 5_000 (fun i -> Fmt.str "x%d" i))
      ^ ").";
    ]

(* ------------------------------------------------------------------ *)
(* The service's JSON layer rides the same discipline: arbitrary bytes
   must come back as [Ok] or [Error], never an exception, and the
   nesting-depth cap must hold against adversarial [[[[… input. *)

module Jsonv = Chase_obs.Jsonv

let jsonv_structured src =
  match Jsonv.of_string src with
  | Ok _ | Error _ -> true
  | exception e ->
    QCheck.Test.fail_reportf "Jsonv.of_string raised %s on %S"
      (Printexc.to_string e) src

let fuzz_jsonv_random_bytes =
  qcheck ~count:1000 "random bytes never crash Jsonv"
    (QCheck.make ~print:(Fmt.str "%S") random_bytes_gen)
    jsonv_structured

let json_soup_gen =
  QCheck.Gen.(
    let token =
      oneofl
        [ "{"; "}"; "["; "]"; ","; ":"; "\""; "null"; "true"; "false";
          "0"; "-1"; "1e9"; "3.14"; "\"k\""; "\"v\\n\""; "\\u00"; " "; "\n" ]
    in
    map (String.concat "") (list_size (int_range 0 40) token))

let fuzz_jsonv_token_soup =
  qcheck ~count:1000 "JSON token soup never crashes Jsonv"
    (QCheck.make ~print:(Fmt.str "%S") json_soup_gen)
    jsonv_structured

let test_jsonv_depth_cap () =
  let nested n = String.make n '[' ^ "0" ^ String.make n ']' in
  (* at the cap: fine; one past it: a structured error, not a stack
     overflow *)
  let cap = Jsonv.default_max_depth in
  Alcotest.(check bool) "boundary depth parses" true
    (Result.is_ok (Jsonv.of_string (nested cap)));
  Alcotest.(check bool) "past the cap is an Error" true
    (Result.is_error (Jsonv.of_string (nested (cap + 1))));
  Alcotest.(check bool) "way past the cap is an Error" true
    (Result.is_error (Jsonv.of_string (nested 100_000)));
  (* unclosed adversarial nesting too — no closing brackets at all *)
  Alcotest.(check bool) "unclosed deep nesting is an Error" true
    (Result.is_error (Jsonv.of_string (String.make 100_000 '[')));
  Alcotest.(check bool) "deep objects are capped too" true
    (Result.is_error
       (Jsonv.of_string
          (String.concat "" (List.init 100_000 (fun _ -> "{\"a\":")))));
  (* a custom, tighter cap is honored *)
  Alcotest.(check bool) "custom cap honored" true
    (Result.is_error (Jsonv.of_string ~max_depth:4 (nested 5)));
  Alcotest.(check bool) "custom cap admits its boundary" true
    (Result.is_ok (Jsonv.of_string ~max_depth:4 (nested 4)))

let test_jsonv_duplicate_keys () =
  match Jsonv.of_string {|{"k": 1, "j": true, "k": 2}|} with
  | Error e -> Alcotest.failf "duplicate keys rejected: %s" e
  | Ok v ->
    (* every binding is preserved in source order… *)
    (match v with
    | Jsonv.Obj pairs ->
      Alcotest.(check (list string)) "all bindings preserved"
        [ "k"; "j"; "k" ] (List.map fst pairs)
    | _ -> Alcotest.fail "not an object");
    (* …and member resolves to the first one *)
    (match Jsonv.member "k" v with
    | Some (Jsonv.Int 1) -> ()
    | _ -> Alcotest.fail "member must return the first binding")

let suite =
  [
    fuzz_random_bytes;
    fuzz_token_soup;
    fuzz_mutated_corpora;
    Alcotest.test_case "edge inputs give structured errors" `Quick
      test_edge_inputs;
    fuzz_jsonv_random_bytes;
    fuzz_jsonv_token_soup;
    Alcotest.test_case "Jsonv nesting-depth cap" `Quick test_jsonv_depth_cap;
    Alcotest.test_case "Jsonv duplicate keys: first binding wins" `Quick
      test_jsonv_duplicate_keys;
  ]
