(** The observability subsystem: span streams are well-formed by
    construction, sinks never raise and always emit valid JSON,
    histogram quantiles stay within the log-bucket error bound, and the
    counters the engine dumps are matcher-independent — planned and
    naive runs must report the same firings.

    Spans and metrics are checked against {e real} engine runs, not
    synthetic event streams, so the tests pin the instrumentation as
    wired, not just the sinks. *)

open Chase
open Test_util

(* ------------------------------------------------------------------ *)
(* Harness: observe a chase run into in-memory sinks                   *)
(* ------------------------------------------------------------------ *)

let tower = lazy (Families.guarded_tower ~levels:5)

let observed_chase ~obs rules db =
  let config =
    { Engine.variant = Variant.Semi_oblivious; limits = Limits.of_budget 10_000 }
  in
  Engine.run ~config ~obs rules db

let observed_run sink_of_buffer =
  let rules = Lazy.force tower in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let buf = Buffer.create 4096 in
  let metrics = Metrics.create () in
  let obs = Obs.create ~metrics [ sink_of_buffer buf ] in
  let result = observed_chase ~obs rules db in
  Obs.finish obs;
  (result, metrics, Buffer.contents buf)

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let parse_line i l =
  match Jsonv.of_string l with
  | Ok j -> j
  | Error msg -> Alcotest.failf "line %d: invalid JSON: %s (%S)" i msg l

let str_member k j = Option.bind (Jsonv.member k j) Jsonv.to_string_opt

(* ------------------------------------------------------------------ *)
(* Span well-formedness                                                *)
(* ------------------------------------------------------------------ *)

(* Replay a ["type"]-discriminated JSONL event stream against a stack:
   every end must match the innermost open span, and nothing may remain
   open at the end of the stream. *)
let replay_jsonl events =
  List.fold_left
    (fun (i, stack) j ->
      let name () =
        match str_member "name" j with
        | Some n -> n
        | None -> Alcotest.failf "event %d: missing name" i
      in
      match str_member "type" j with
      | Some "begin" -> (i + 1, name () :: stack)
      | Some "end" -> (
        match stack with
        | top :: below ->
          Alcotest.(check string)
            (Fmt.str "event %d ends the innermost span" i)
            top (name ());
          (i + 1, below)
        | [] -> Alcotest.failf "event %d: end %S with no open span" i (name ()))
      | Some ("instant" | "series") -> (i + 1, stack)
      | Some t -> Alcotest.failf "event %d: unknown type %S" i t
      | None -> Alcotest.failf "event %d: missing type" i)
    (0, []) events

let test_jsonl_spans () =
  let result, _, out = observed_run (fun b -> Sink.jsonl (Buffer.add_string b)) in
  Alcotest.(check bool) "run terminated" true (result.Engine.status = Engine.Terminated);
  let events = List.mapi parse_line (lines out) in
  Alcotest.(check bool) "stream is non-empty" true (events <> []);
  let _, open_spans = replay_jsonl events in
  Alcotest.(check (list string)) "no span left open" [] open_spans;
  (* the outermost span is the whole chase run *)
  match events with
  | first :: _ ->
    Alcotest.(check (option string)) "first event opens the chase span"
      (Some "chase") (str_member "name" first)
  | [] -> ()

let test_trace_spans () =
  let _, _, out = observed_run (fun b -> Sink.trace (Buffer.add_string b)) in
  match Jsonv.of_string out with
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg
  | Ok (Jsonv.List events) ->
    Alcotest.(check bool) "trace is non-empty" true (events <> []);
    let final =
      List.fold_left
        (fun stack ev ->
          let name = Option.get (str_member "name" ev) in
          match str_member "ph" ev with
          | Some "B" -> name :: stack
          | Some "E" -> (
            match stack with
            | top :: below ->
              Alcotest.(check string) "balanced end" top name;
              below
            | [] -> Alcotest.failf "end %S with no open span" name)
          | Some ("i" | "C") -> stack
          | ph ->
            Alcotest.failf "unknown phase %a" Fmt.(Dump.option string) ph)
        [] events
    in
    Alcotest.(check (list string)) "trace spans balance" [] final;
    List.iter
      (fun ev ->
        match Option.bind (Jsonv.member "ts" ev) Jsonv.to_float_opt with
        | Some ts ->
          Alcotest.(check bool) "timestamps are non-negative" true (ts >= 0.)
        | None -> Alcotest.fail "event without a ts")
      events
  | Ok _ -> Alcotest.fail "trace top level is not an array"

(* An empty trace still closes to valid JSON. *)
let test_empty_trace () =
  let buf = Buffer.create 64 in
  let s = Sink.trace (Buffer.add_string buf) in
  s.Sink.close ();
  match Jsonv.of_string (Buffer.contents buf) with
  | Ok (Jsonv.List []) -> ()
  | Ok j -> Alcotest.failf "expected [], got %a" Jsonv.pp j
  | Error msg -> Alcotest.failf "empty trace invalid: %s" msg

(* Stray ends are dropped, unclosed spans are closed by [finish]. *)
let test_span_discipline () =
  let buf = Buffer.create 256 in
  let obs = Obs.create [ Sink.jsonl (Buffer.add_string buf) ] in
  Obs.span_begin obs "outer";
  Obs.span_begin obs "inner";
  Obs.span_end obs "outer";
  (* mismatched: dropped *)
  Obs.span_end obs "inner";
  Obs.span_begin obs "left-open";
  Obs.finish obs;
  let events = List.mapi parse_line (lines (Buffer.contents buf)) in
  let _, open_spans = replay_jsonl events in
  Alcotest.(check (list string)) "finish closed everything" [] open_spans

(* ------------------------------------------------------------------ *)
(* Histogram quantile math                                             *)
(* ------------------------------------------------------------------ *)

(* Log buckets of ratio sqrt 2: any quantile is within a factor of
   2^(1/4) ≈ 1.19 of the true sample quantile (and clamped to min/max). *)
let factor_close ~expected actual =
  let f = actual /. expected in
  f <= 1.2 && f >= 1. /. 1.2

let test_hist_quantiles () =
  let m = Metrics.create () in
  for i = 1 to 1000 do
    Metrics.observe m "lat" (float_of_int i)
  done;
  match Metrics.hist_stats m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some (count, sum, mn, mx, p50, p90, p99) ->
    Alcotest.(check int) "count" 1000 count;
    Alcotest.(check (float 1e-6)) "sum" 500500. sum;
    Alcotest.(check (float 1e-6)) "min" 1. mn;
    Alcotest.(check (float 1e-6)) "max" 1000. mx;
    Alcotest.(check bool) "p50 ~ 500" true (factor_close ~expected:500. p50);
    Alcotest.(check bool) "p90 ~ 900" true (factor_close ~expected:900. p90);
    Alcotest.(check bool) "p99 ~ 990" true (factor_close ~expected:990. p99);
    Alcotest.(check bool) "quantiles are monotone" true
      (p50 <= p90 && p90 <= p99)

let test_hist_degenerate () =
  let m = Metrics.create () in
  (* all-equal samples: every quantile is exactly the sample (clamping) *)
  for _ = 1 to 50 do
    Metrics.observe m "k" 7.25
  done;
  (match Metrics.hist_stats m "k" with
  | Some (50, _, mn, mx, p50, _, p99) ->
    Alcotest.(check (float 1e-9)) "min" 7.25 mn;
    Alcotest.(check (float 1e-9)) "max" 7.25 mx;
    Alcotest.(check (float 1e-9)) "p50 clamped" 7.25 p50;
    Alcotest.(check (float 1e-9)) "p99 clamped" 7.25 p99
  | _ -> Alcotest.fail "bad stats");
  (* absent and empty names *)
  Alcotest.(check bool) "absent name" true (Metrics.hist_stats m "none" = None);
  (* non-positive samples land in the underflow bucket but stay exact
     in min/max *)
  Metrics.observe m "z" 0.;
  Metrics.observe m "z" (-3.);
  match Metrics.hist_stats m "z" with
  | Some (2, sum, mn, mx, _, _, _) ->
    Alcotest.(check (float 1e-9)) "sum" (-3.) sum;
    Alcotest.(check (float 1e-9)) "min" (-3.) mn;
    Alcotest.(check (float 1e-9)) "max" 0. mx
  | _ -> Alcotest.fail "bad non-positive stats"

let quantile_bound_fuzz =
  let gen =
    QCheck.make
      ~print:Fmt.(str "%a" (Dump.list float))
      QCheck.Gen.(list_size (int_range 1 200) (float_range 1e-9 1e9))
  in
  qcheck ~count:200 "histogram quantiles stay within the bucket bound" gen
    (fun samples ->
      let m = Metrics.create () in
      List.iter (Metrics.observe m "h") samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      match Metrics.hist_stats m "h" with
      | None -> false
      | Some (count, _, _, _, p50, p90, p99) ->
        count = n
        && List.for_all2
             (fun q est ->
               let rank =
                 min (n - 1)
                   (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))
               in
               let exact = List.nth sorted rank in
               (* one bucket of slack on either side of the true sample
                  quantile, plus the min/max clamp *)
               est <= exact *. 1.5 && est >= exact /. 1.5
               || est = List.hd sorted
               || est = List.nth sorted (n - 1))
             [ 0.5; 0.9; 0.99 ] [ p50; p90; p99 ])

(* ------------------------------------------------------------------ *)
(* Counter determinism: planned vs naive                               *)
(* ------------------------------------------------------------------ *)

let with_matcher m f =
  let saved = Hom.matcher () in
  Hom.set_matcher m;
  Fun.protect ~finally:(fun () -> Hom.set_matcher saved) f

let observed_counters matcher rules db =
  with_matcher matcher (fun () ->
      let metrics = Metrics.create () in
      let obs = Obs.create ~metrics [ Sink.null ] in
      let result = observed_chase ~obs rules db in
      Obs.finish obs;
      (result, metrics))

let test_counter_determinism () =
  for seed = 0 to 14 do
    let rules = Random_tgds.guarded ~seed () in
    let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
    let _, mn = observed_counters Hom.Naive rules db in
    let _, mp = observed_counters Hom.Planned rules db in
    let ctx = Fmt.str "seed %d" seed in
    List.iter
      (fun name ->
        Alcotest.(check int)
          (Fmt.str "%s: %s" ctx name)
          (Metrics.counter_value mn name)
          (Metrics.counter_value mp name))
      [
        "chase.triggers_applied";
        "chase.triggers_skipped";
        "chase.atoms_created";
        "chase.nulls_created";
        (* same substitution sets ⇒ same number of emitted matches,
           even though the probe counts differ between matchers *)
        "chase.hom.matches";
      ];
    (* per-rule firings agree label by label *)
    let labels = Metrics.labels_of mn "chase.rule.firings" in
    Alcotest.(check (list string))
      (ctx ^ ": same rule labels") labels
      (Metrics.labels_of mp "chase.rule.firings");
    List.iter
      (fun label ->
        Alcotest.(check int)
          (Fmt.str "%s: firings[%s]" ctx label)
          (Metrics.counter_value mn ~label "chase.rule.firings")
          (Metrics.counter_value mp ~label "chase.rule.firings"))
      labels
  done

(* The profile table re-sums to the run totals. *)
let test_profile_sums () =
  let result, metrics, _ =
    observed_run (fun b -> Sink.jsonl (Buffer.add_string b))
  in
  let rows = Profile.rows metrics in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  Alcotest.(check int) "firings sum to triggers applied"
    result.Engine.triggers_applied
    (sum (fun (r : Profile.row) -> r.firings));
  Alcotest.(check int) "nulls sum to nulls created" result.Engine.nulls_created
    (sum (fun (r : Profile.row) -> r.nulls))

(* ------------------------------------------------------------------ *)
(* Sinks never raise                                                   *)
(* ------------------------------------------------------------------ *)

let event_gen =
  let open QCheck.Gen in
  let name =
    oneofl [ "a"; "chase"; "weird \"name\""; "tab\there"; "nl\nthere"; "" ]
  in
  let ts = float_range (-2.) 5. in
  let scalar =
    oneof
      [
        return Jsonv.Null;
        map (fun b -> Jsonv.Bool b) bool;
        map (fun i -> Jsonv.Int i) small_signed_int;
        map (fun f -> Jsonv.Float f) (float_range (-1e6) 1e6);
        return (Jsonv.Float nan);
        return (Jsonv.Float infinity);
        map (fun s -> Jsonv.String s) (small_string ~gen:printable);
      ]
  in
  let args = list_size (int_range 0 3) (pair (oneofl [ "k"; "x y"; "" ]) scalar) in
  let values =
    list_size (int_range 0 3) (pair (oneofl [ "v"; "rate" ]) (float_range (-1e3) 1e3))
  in
  oneof
    [
      map3 (fun name ts args -> Sink.Span_begin { name; ts; args }) name ts args;
      map2 (fun name ts -> Sink.Span_end { name; ts }) name ts;
      map3 (fun name ts args -> Sink.Instant { name; ts; args }) name ts args;
      map3 (fun name ts values -> Sink.Series { name; ts; values }) name ts values;
    ]

let pp_event fm (e : Sink.event) =
  match e with
  | Sink.Span_begin { name; ts; _ } -> Fmt.pf fm "B(%S,%g)" name ts
  | Sink.Span_end { name; ts } -> Fmt.pf fm "E(%S,%g)" name ts
  | Sink.Instant { name; ts; _ } -> Fmt.pf fm "I(%S,%g)" name ts
  | Sink.Series { name; ts; _ } -> Fmt.pf fm "S(%S,%g)" name ts

let sink_fuzz =
  let gen =
    QCheck.make
      ~print:Fmt.(str "%a" (Dump.list pp_event))
      QCheck.Gen.(list_size (int_range 0 40) event_gen)
  in
  qcheck ~count:300 "sinks never raise and always emit valid JSON" gen
    (fun events ->
      (* jsonl: every line parses *)
      let buf = Buffer.create 256 in
      let s = Sink.jsonl (Buffer.add_string buf) in
      List.iter s.Sink.emit events;
      s.Sink.flush ();
      s.Sink.close ();
      let jsonl_ok =
        List.for_all
          (fun l -> Result.is_ok (Jsonv.of_string l))
          (lines (Buffer.contents buf))
      in
      (* trace: the whole file parses as one array, whatever the event
         interleaving (balance is the emitter's job, not the sink's) *)
      let buf2 = Buffer.create 256 in
      let t = Sink.trace (Buffer.add_string buf2) in
      List.iter t.Sink.emit events;
      t.Sink.flush ();
      t.Sink.close ();
      let trace_ok =
        match Jsonv.of_string (Buffer.contents buf2) with
        | Ok (Jsonv.List l) -> List.length l = List.length events
        | _ -> false
      in
      (* null and tee compose without raising *)
      let n = Sink.tee [ Sink.null; Sink.filter Sink.is_point Sink.null ] in
      List.iter n.Sink.emit events;
      n.Sink.close ();
      jsonl_ok && trace_ok)

(* write_metrics output parses line by line and starts with the schema
   header when prefixed the way the CLIs do *)
let test_metrics_jsonl () =
  let _, metrics, _ = observed_run (fun _ -> Sink.null) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf Obs.metrics_header;
  Buffer.add_char buf '\n';
  let obs = Obs.create ~metrics [] in
  Obs.write_metrics obs (Buffer.add_string buf);
  Obs.finish obs;
  let ls = lines (Buffer.contents buf) in
  Alcotest.(check bool) "has summaries" true (List.length ls > 1);
  List.iteri
    (fun i l ->
      match Jsonv.of_string l with
      | Ok j ->
        if i = 0 then
          Alcotest.(check (option string)) "schema header"
            (Some "chase-metrics/1") (str_member "schema" j)
        else
          Alcotest.(check bool)
            (Fmt.str "line %d has a type" i)
            true
            (str_member "type" j <> None)
      | Error msg -> Alcotest.failf "line %d: %s" i msg)
    ls

let suite =
  [
    Alcotest.test_case "jsonl spans nest well-formedly" `Quick test_jsonl_spans;
    Alcotest.test_case "trace file is balanced valid JSON" `Quick
      test_trace_spans;
    Alcotest.test_case "empty trace closes to valid JSON" `Quick
      test_empty_trace;
    Alcotest.test_case "stray ends dropped, finish closes spans" `Quick
      test_span_discipline;
    Alcotest.test_case "histogram quantiles on 1..1000" `Quick
      test_hist_quantiles;
    Alcotest.test_case "histogram degenerate cases" `Quick test_hist_degenerate;
    quantile_bound_fuzz;
    Alcotest.test_case "planned and naive report identical counters" `Quick
      test_counter_determinism;
    Alcotest.test_case "profile rows re-sum to run totals" `Quick
      test_profile_sums;
    sink_fuzz;
    Alcotest.test_case "metrics JSONL parses with schema header" `Quick
      test_metrics_jsonl;
  ]
