(** Replication tests: the {!Shipframe} codec, a raw-socket fuzz of the
    {!Receiver} (duplicates, gaps, corrupt payloads, truncated frames —
    none may corrupt the standby's spool), the {!Shipper}'s chaos
    faults driving real resyncs, streaming progress-frame invariants,
    and the replicated failover soak: a primary/standby pair where the
    primary is killed at 10+ random points with durable requests in
    flight, the standby is promoted (explicitly or through the failover
    client's discovery), and {e every} acknowledged request must
    re-derive on the standby byte-identical to the never-killed
    reference. *)

open Chase

let tmp = Test_service.tmp_name

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Corpus: durable chases whose expected bytes come from the same
   Driver the single-shot CLIs run — the never-killed reference.       *)

let cycle_graph n =
  let b = Buffer.create 256 in
  Buffer.add_string b "tc: e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Fmt.str "e(n%d, n%d).\n" i ((i + 1) mod n))
  done;
  Buffer.contents b

let path_program = "tc: e(X, Y), e(Y, Z) -> e(X, Z).\ne(a,b). e(b,c). e(c,d).\n"
let drill_budget = 8_000
let drill_program = cycle_graph 18

type expected = { req : Proto.request; code : int; out : string; err : string }

let expect op ~program ~budget ~quiet ~durable =
  let code, out, err =
    Test_service.driver_bytes op ~budget ~src:program ~quiet
  in
  let req =
    Proto.request ~file:"t.chase" ~program ~budget ~quiet ~durable op
  in
  { req; code; out; err }

let check_parity name exp (r : Proto.result) =
  Alcotest.(check int) (name ^ ": exit") exp.code r.Proto.exit_code;
  Alcotest.(check string) (name ^ ": stdout") exp.out r.Proto.stdout;
  Alcotest.(check string) (name ^ ": stderr") exp.err r.Proto.stderr

let corpus =
  lazy
    [
      expect Proto.Chase ~program:drill_program ~budget:drill_budget
        ~quiet:true ~durable:true;
      expect Proto.Chase ~program:path_program ~budget:10_000 ~quiet:true
        ~durable:true;
      expect Proto.Chase ~program:path_program ~budget:10_000 ~quiet:false
        ~durable:true;
    ]

(* ------------------------------------------------------------------ *)
(* Shipframe codec                                                     *)

let test_shipframe_roundtrip () =
  let ship seq head kind name data =
    Shipframe.Ship { Shipframe.seq; head; kind; name; data; trace = None }
  in
  let msgs =
    [
      Shipframe.Hello 3;
      ship 1 4 Shipframe.File "k.req" "\x00\x01\xffraw bytes";
      ship 2 2 (Shipframe.Journal 0) "k.jnl" "CHJ1\x00header";
      ship 7 9 (Shipframe.Journal 128) "k.jnl" "frame";
      ship 3 3 Shipframe.Delete "k.resp" "";
      Shipframe.Ack 42;
      Shipframe.Nack (5, "sequence gap: got 9, expected 5");
    ]
  in
  List.iter
    (fun m ->
      match Shipframe.decode (Shipframe.encode m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.failf "roundtrip rejected: %s" e)
    msgs

(* Flip one hex digit of the encoded payload, leaving the declared CRC
   intact — the exact corruption [Faults.Corrupt_ship] injects. *)
let flip_data_digit payload =
  let marker = "\"data\":\"" in
  let mlen = String.length marker in
  let rec find i =
    if i + mlen > String.length payload then
      Alcotest.fail "no data field to corrupt"
    else if String.sub payload i mlen = marker then i + mlen
    else find (i + 1)
  in
  let i = find 0 in
  if i >= String.length payload || payload.[i] = '"' then
    Alcotest.fail "empty data field";
  let b = Bytes.of_string payload in
  Bytes.set b i (if payload.[i] = '0' then '1' else '0');
  Bytes.to_string b

let test_shipframe_rejects () =
  let reject name payload =
    match Shipframe.decode payload with
    | Error _ -> ()
    | Ok m -> Alcotest.failf "%s decoded as %a" name Shipframe.pp m
  in
  let ship data =
    Shipframe.encode
      (Shipframe.Ship
         { Shipframe.seq = 1; head = 1; kind = Shipframe.File;
           name = "k.req"; data; trace = None })
  in
  (* corrupt payload under an intact CRC *)
  reject "bad crc" (flip_data_digit (ship "0123456789"));
  (* odd-length hex *)
  let enc = ship "ab" in
  let marker_at =
    let m = "\"data\":\"" in
    let rec find i =
      if String.sub enc i (String.length m) = m then i + String.length m
      else find (i + 1)
    in
    find 0
  in
  reject "odd hex"
    (String.sub enc 0 marker_at
    ^ String.sub enc (marker_at + 1) (String.length enc - marker_at - 1));
  (* path escapes and dotfiles in the name *)
  List.iter
    (fun name ->
      reject ("name " ^ name)
        (Shipframe.encode
           (Shipframe.Ship
              { Shipframe.seq = 1; head = 1; kind = Shipframe.File; name;
                data = "x"; trace = None })))
    [ "../evil"; "a/b"; ".hidden"; "" ];
  (* not even JSON *)
  reject "junk" "@@@@";
  reject "truncated json" {|{"type":"ship","seq|};
  reject "unknown type" {|{"type":"frobnicate"}|};
  Alcotest.(check bool) "valid_name accepts plain keys" true
    (Shipframe.valid_name "0f3a.req");
  Alcotest.(check bool) "valid_name rejects separators" false
    (Shipframe.valid_name "a/b")

(* ------------------------------------------------------------------ *)
(* Client backoff hardening: the ceiling really caps every delay, and
   a give-up accounts for its attempts and total wait.                 *)

let test_backoff_ceiling () =
  let socket = tmp ".sock" in
  (* nothing listens there *)
  let delays = ref [] in
  match
    Client.call_retry ~attempts:4 ~base_delay:0.01 ~max_delay:0.02 ~seed:7
      ~on_retry:(fun ~attempt:_ ~delay _ -> delays := delay :: !delays)
      ~socket (Proto.request Proto.Ping)
  with
  | Ok _ -> Alcotest.fail "no server, yet the call succeeded"
  | Error (Client.Rejected _) -> Alcotest.fail "expected Gave_up"
  | Error (Client.Gave_up { attempts; total_wait; last }) ->
    Alcotest.(check int) "attempts reported" 4 attempts;
    Alcotest.(check int) "every attempt backed off" 4 (List.length !delays);
    List.iter
      (fun d ->
        Alcotest.(check bool)
          (Fmt.str "delay %.4f <= ceiling" d)
          true
          (d <= 0.02 +. 1e-9))
      !delays;
    let sum = List.fold_left ( +. ) 0. !delays in
    Alcotest.(check (float 1e-6)) "total_wait = sum of delays" sum total_wait;
    Alcotest.(check bool) "last error is descriptive" true
      (String.length last > 0)

(* ------------------------------------------------------------------ *)
(* Receiver fuzz over a raw socket: speak the ship protocol by hand.   *)

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  fd

let close_raw fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_msg fd msg = Proto.write_frame fd (Shipframe.encode msg)

let recv_msg fd =
  match Proto.read_frame fd with
  | `Frame p -> (
    match Shipframe.decode p with
    | Ok m -> m
    | Error e -> Alcotest.failf "undecodable reply: %s" e)
  | `Closed -> Alcotest.fail "connection closed instead of a reply"
  | `Bad e -> Alcotest.failf "bad reply frame: %s" e

let ship seq head kind name data =
  Shipframe.Ship { Shipframe.seq; head; kind; name; data; trace = None }

let test_receiver_fuzz () =
  let spool = tmp ".rspool" in
  let socket = tmp ".ship.sock" in
  let recvr =
    Receiver.start (Receiver.config ~cert_interval:0. ~spool_dir:spool ~socket ())
  in
  let payload = "the quick brown fox" in
  (* a clean session: hello, ship, cumulative ack *)
  let fd = connect_raw socket in
  send_msg fd (Shipframe.Hello 1);
  send_msg fd (ship 1 2 Shipframe.File "k1.req" payload);
  (match recv_msg fd with
  | Shipframe.Ack 1 -> ()
  | m -> Alcotest.failf "expected ack 1, got %a" Shipframe.pp m);
  (* a duplicate with different bytes: re-acked, NOT re-applied *)
  send_msg fd (ship 1 2 Shipframe.File "k1.req" "IMPOSTOR");
  (match recv_msg fd with
  | Shipframe.Ack 1 -> ()
  | m -> Alcotest.failf "dup: expected re-ack 1, got %a" Shipframe.pp m);
  (* a sequence gap: the nack names the expected seq — the re-request *)
  send_msg fd (ship 5 5 Shipframe.File "k2.req" "x");
  (match recv_msg fd with
  | Shipframe.Nack (2, _) -> ()
  | m -> Alcotest.failf "gap: expected nack 2, got %a" Shipframe.pp m);
  close_raw fd;
  (* a corrupt payload under an intact CRC: structured reject *)
  let fd = connect_raw socket in
  send_msg fd (Shipframe.Hello 2);
  Proto.write_frame fd
    (flip_data_digit
       (Shipframe.encode (ship 1 1 Shipframe.File "k1.req" "replacement")));
  (match recv_msg fd with
  | Shipframe.Nack (1, _) -> ()
  | m -> Alcotest.failf "crc: expected nack 1, got %a" Shipframe.pp m);
  close_raw fd;
  (* a journal append at the wrong offset: rejected before any write *)
  let fd = connect_raw socket in
  send_msg fd (Shipframe.Hello 3);
  send_msg fd (ship 1 1 (Shipframe.Journal 999) "k9.jnl" "zz");
  (match recv_msg fd with
  | Shipframe.Nack (1, _) -> ()
  | m -> Alcotest.failf "offset: expected nack 1, got %a" Shipframe.pp m);
  close_raw fd;
  (* a frame truncated mid-payload: dropped without corruption *)
  let fd = connect_raw socket in
  let torn = Bytes.of_string "40\n{\"type\"" in
  ignore (Unix.write fd torn 0 (Bytes.length torn));
  close_raw fd;
  (* the receiver still serves a clean session after all of it *)
  let fd = connect_raw socket in
  send_msg fd (Shipframe.Hello 4);
  send_msg fd (ship 1 1 Shipframe.File "k2.req" "bye");
  (match recv_msg fd with
  | Shipframe.Ack 1 -> ()
  | m -> Alcotest.failf "post-fuzz: expected ack 1, got %a" Shipframe.pp m);
  close_raw fd;
  (* the spool holds exactly what clean sessions shipped *)
  Alcotest.(check string) "k1.req never corrupted" payload
    (read_file (Filename.concat spool "k1.req"));
  Alcotest.(check string) "k2.req applied" "bye"
    (read_file (Filename.concat spool "k2.req"));
  Alcotest.(check bool) "no journal materialised" false
    (Sys.file_exists (Filename.concat spool "k9.jnl"));
  let stats = Receiver.stats recvr in
  Alcotest.(check int) "applied" 2 (List.assoc "applied" stats);
  Alcotest.(check int) "dups" 1 (List.assoc "dups" stats);
  Alcotest.(check int) "nacks" 3 (List.assoc "nacks" stats);
  Alcotest.(check int) "sessions" 4 (List.assoc "sessions" stats);
  Receiver.stop recvr

(* ------------------------------------------------------------------ *)
(* Shipper chaos: cut / duplicated / corrupted / delayed ship frames
   drive real resyncs, and the two spools still converge bytewise.     *)

let test_shipper_chaos_resync () =
  let src = tmp ".sspool" in
  let dst = tmp ".dspool" in
  Unix.mkdir src 0o755;
  write_file (Filename.concat src "a.req") "alpha";
  write_file (Filename.concat src "b.req") "beta";
  write_file (Filename.concat src "c.resp") "gamma";
  let socket = tmp ".ship.sock" in
  let recvr =
    Receiver.start (Receiver.config ~cert_interval:0. ~spool_dir:dst ~socket ())
  in
  let shipper =
    Shipper.start
      (Shipper.config ~sync_timeout:0. ~poll_interval:0.01
         ~connect_retry:0.01
         ~faults:
           [
             Faults.Cut_ship_after 1;
             Faults.Dup_ship 3;
             Faults.Corrupt_ship 5;
             Faults.Delay_ship (6, 0.05);
           ]
         ~spool_dir:src ~ship_socket:socket ())
  in
  (* [quiesce] right after [start] is vacuously true — wait for the
     first session's resync to pick the files up before draining *)
  let enqueued () = List.assoc "enqueued" (Shipper.stats shipper) in
  let wait_until ?(timeout = 10.0) f =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if f () then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.01;
        go ()
      end
    in
    go ()
  in
  (* frame 1 is cut → session 2 resyncs all three files (frames 2-4,
     frame 3 duplicated) *)
  Alcotest.(check bool) "resync picked up the spool" true
    (wait_until (fun () -> enqueued () >= 3));
  Alcotest.(check bool) "quiesced through the partition" true
    (Shipper.quiesce shipper ~timeout:10.0);
  (* a fourth file arrives via the tailer as frame 5 — corrupted →
     nack → session 3 resyncs everything (frame 6 delayed) *)
  let e0 = enqueued () in
  write_file (Filename.concat src "d.req.tmp") "delta";
  Sys.rename
    (Filename.concat src "d.req.tmp")
    (Filename.concat src "d.req");
  Alcotest.(check bool) "tailer picked up the new file" true
    (wait_until (fun () -> enqueued () > e0));
  Alcotest.(check bool) "quiesced through the corruption" true
    (Shipper.quiesce shipper ~timeout:10.0);
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " converged")
        (read_file (Filename.concat src name))
        (read_file (Filename.concat dst name)))
    [ "a.req"; "b.req"; "c.resp"; "d.req" ];
  let s = Shipper.stats shipper in
  Alcotest.(check bool)
    (Fmt.str "shipper resynced (%d sessions)" (List.assoc "sessions" s))
    true
    (List.assoc "sessions" s >= 3);
  Alcotest.(check int) "nothing left queued" 0 (List.assoc "queue" s);
  let r = Receiver.stats recvr in
  Alcotest.(check bool)
    (Fmt.str "corruption drew a nack (%d)" (List.assoc "nacks" r))
    true
    (List.assoc "nacks" r >= 1);
  Alcotest.(check bool)
    (Fmt.str "duplicate re-acked (%d)" (List.assoc "dups" r))
    true
    (List.assoc "dups" r >= 1);
  Shipper.stop shipper;
  Receiver.stop recvr

(* ------------------------------------------------------------------ *)
(* Streaming progress frames: monotone, strictly before the final
   response, and the final bytes identical to a non-streamed run.      *)

let test_streaming_progress () =
  let socket = tmp ".sock" in
  let server = Server.start (Server.config ~workers:2 socket) in
  let program = cycle_graph 30 in
  let budget = 30_000 in
  let code, out, err =
    Test_service.driver_bytes Proto.Chase ~budget ~src:program ~quiet:true
  in
  let frames = ref [] in
  let final = ref false in
  (match Client.connect ~socket () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok conn ->
    let req =
      Proto.request ~file:"t.chase" ~program ~budget ~quiet:true ~stream:true
        Proto.Chase
    in
    (match
       Client.call conn req
         ~on_progress:(fun p ->
           Alcotest.(check bool) "progress strictly before the final frame"
             false !final;
           frames := p :: !frames)
     with
    | Ok (Proto.Ok_response r) ->
      final := true;
      Alcotest.(check int) "stream: exit" code r.Proto.exit_code;
      Alcotest.(check string) "stream: stdout" out r.Proto.stdout;
      Alcotest.(check string) "stream: stderr" err r.Proto.stderr
    | Ok resp -> Alcotest.failf "stream: %a" Proto.pp_response resp
    | Error e -> Alcotest.failf "stream: transport: %s" e);
    Client.close conn);
  let frames = List.rev !frames in
  Alcotest.(check bool)
    (Fmt.str "progress frames streamed (%d)" (List.length frames))
    true
    (List.length frames >= 1);
  ignore
    (List.fold_left
       (fun (pstep, pelapsed) (p : Proto.progress) ->
         Alcotest.(check bool) "step strictly increases" true
           (p.Proto.step > pstep);
         Alcotest.(check bool) "elapsed never decreases" true
           (p.Proto.elapsed >= pelapsed);
         Alcotest.(check bool) "atoms positive" true (p.Proto.atoms > 0);
         Alcotest.(check bool) "nulls non-negative" true (p.Proto.nulls >= 0);
         (p.Proto.step, p.Proto.elapsed))
       (0, 0.) frames);
  (* the same work without streaming: byte-identical final response *)
  let req =
    Proto.request ~file:"t.chase" ~program ~budget ~quiet:true Proto.Chase
  in
  (match Client.call_retry ~attempts:3 ~socket req with
  | Ok (Proto.Ok_response r) ->
    Alcotest.(check int) "plain: exit" code r.Proto.exit_code;
    Alcotest.(check string) "plain: stdout" out r.Proto.stdout;
    Alcotest.(check string) "plain: stderr" err r.Proto.stderr
  | Ok resp -> Alcotest.failf "plain: %a" Proto.pp_response resp
  | Error f -> Alcotest.failf "plain: %a" Client.pp_failure f);
  Server.stop server;
  Server.wait server

(* ------------------------------------------------------------------ *)
(* The replicated failover soak.                                       *)

let kill_cycles = 11

(* One primary/standby pair; returns what was torn down promoted. *)
let replicated_pair ~primary_socket ~standby_socket ~ship ~spool_p ~spool_s
    ?metrics ?(cert_interval = 0.25) () =
  let standby =
    Standby.start
      (Standby.config ~cert_interval ?metrics
         ~server:(Server.config ~workers:3 ~spool_dir:spool_s standby_socket)
         ~ship_socket:ship ())
  in
  let shipper =
    Shipper.start
      (Shipper.config ~sync_timeout:2.0 ~poll_interval:0.02
         ~connect_retry:0.02 ~spool_dir:spool_p ~ship_socket:ship ())
  in
  let server =
    Server.start
      (Server.config ~workers:3 ~spool_dir:spool_p
         ~on_durable:(Shipper.on_durable shipper) primary_socket)
  in
  (standby, shipper, server)

(* After promotion: the shipped spool must drain (zero lost
   acknowledged requests) and every response the dead primary
   acknowledged must re-derive byte-identically on the standby. *)
let audit_standby ~cycle ~standby_socket ~spool_s acked =
  let spool = Spool.create ~dir:spool_s in
  let rec drain k =
    match Spool.pending spool with
    | [] -> ()
    | pending ->
      if k = 0 then
        Alcotest.failf "cycle %d: lost acknowledged requests: %s" cycle
          (String.concat ", " pending)
      else begin
        Thread.delay 0.05;
        drain (k - 1)
      end
  in
  drain 200;
  List.iter
    (fun (exp, (primary_r : Proto.result)) ->
      match
        Client.call_retry ~attempts:8 ~base_delay:0.05 ~socket:standby_socket
          exp.req
      with
      | Ok (Proto.Ok_response r) ->
        check_parity "standby" exp r;
        Alcotest.(check int) "standby exit = primary exit"
          primary_r.Proto.exit_code r.Proto.exit_code;
        Alcotest.(check string) "standby stdout = primary stdout"
          primary_r.Proto.stdout r.Proto.stdout;
        Alcotest.(check string) "standby stderr = primary stderr"
          primary_r.Proto.stderr r.Proto.stderr
      | Ok resp -> Alcotest.failf "standby rejected: %a" Proto.pp_response resp
      | Error f -> Alcotest.failf "standby: %a" Client.pp_failure f)
    acked

let test_failover_soak () =
  let corpus = Lazy.force corpus in
  let n = List.length corpus in
  let kills = ref 0 in
  let acked_total = ref 0 in
  (* phase A: kill the primary at a different point every cycle *)
  for cycle = 0 to kill_cycles - 1 do
    let a = tmp ".a.sock" in
    let b = tmp ".b.sock" in
    let ship = tmp ".ship.sock" in
    let spool_p = tmp ".p.spool" in
    let spool_s = tmp ".s.spool" in
    let standby, shipper, server =
      replicated_pair ~primary_socket:a ~standby_socket:b ~ship ~spool_p
        ~spool_s ()
    in
    let mu = Mutex.create () in
    let acked = ref [] in
    let threads =
      List.init 4 (fun i ->
          Thread.create
            (fun () ->
              let exp = List.nth corpus ((cycle + i) mod n) in
              (* the kill races this call: losing the request is fine,
                 losing an *acknowledged* one is the bug we hunt *)
              match
                Client.call_retry ~attempts:2 ~base_delay:0.01 ~socket:a
                  exp.req
              with
              | Ok (Proto.Ok_response r) ->
                check_parity "primary" exp r;
                Mutex.lock mu;
                acked := (exp, r) :: !acked;
                Mutex.unlock mu
              | Ok _ | Error _ -> ())
            ())
    in
    Thread.delay (0.004 +. (0.006 *. float_of_int (cycle mod 5)));
    Server.kill server;
    Server.wait server;
    incr kills;
    List.iter Thread.join threads;
    Shipper.stop shipper;
    let acked_now = !acked in
    acked_total := !acked_total + List.length acked_now;
    Standby.promote standby;
    audit_standby ~cycle ~standby_socket:b ~spool_s acked_now;
    Standby.stop standby
  done;
  Alcotest.(check bool) (Fmt.str "kills %d >= 10" !kills) true (!kills >= 10);
  Alcotest.(check bool)
    (Fmt.str "acknowledged under fire (%d)" !acked_total)
    true (!acked_total >= 1);
  (* phase B: client-driven discovery.  A durable request completes on
     the primary, the standby certifies the shipped journal, the
     primary dies, and the failover client finds + promotes the
     standby on its own — then serves byte-identical bytes. *)
  let a = tmp ".a.sock" in
  let b = tmp ".b.sock" in
  let ship = tmp ".ship.sock" in
  let spool_p = tmp ".p.spool" in
  let spool_s = tmp ".s.spool" in
  let metrics = tmp ".jsonl" in
  let standby, shipper, server =
    replicated_pair ~primary_socket:a ~standby_socket:b ~ship ~spool_p
      ~spool_s ~metrics ~cert_interval:0.1 ()
  in
  let exp = List.hd corpus in
  let primary_r =
    match Client.call_retry ~attempts:5 ~socket:a exp.req with
    | Ok (Proto.Ok_response r) ->
      check_parity "pre-failover" exp r;
      r
    | Ok resp -> Alcotest.failf "pre-failover: %a" Proto.pp_response resp
    | Error f -> Alcotest.failf "pre-failover: %a" Client.pp_failure f
  in
  Alcotest.(check bool) "replication quiesced" true
    (Shipper.quiesce shipper ~timeout:10.0);
  (* continuous certification must clear the shipped journal *)
  let receiver =
    match Standby.receiver standby with
    | Some r -> r
    | None -> Alcotest.fail "standby already promoted?"
  in
  let rec wait_cert k =
    let s = Receiver.stats receiver in
    if List.assoc "certified" s >= 1 then ()
    else if List.assoc "cert_fails" s >= 1 then
      Alcotest.failf "standby certification failed: %s"
        (Option.value ~default:"-" (Receiver.last_error receiver))
    else if k = 0 then Alcotest.fail "standby never certified the journal"
    else begin
      Thread.delay 0.1;
      wait_cert (k - 1)
    end
  in
  wait_cert 100;
  Server.kill server;
  Server.wait server;
  incr kills;
  Shipper.stop shipper;
  (* the failover client: dead primary first, standby second *)
  let events = ref [] in
  (match
     Failover.call ~attempts_per_server:8 ~base_delay:0.05 ~seed:1
       ~on_event:(fun e -> events := e :: !events)
       ~servers:[ a; b ] exp.req
   with
  | Ok o ->
    Alcotest.(check string) "served by the standby" b o.Failover.server;
    Alcotest.(check bool) "promoted en route" true o.Failover.promoted;
    Alcotest.(check bool) "gave up on the dead primary" true
      (o.Failover.failovers >= 1);
    (match o.Failover.response with
    | Proto.Ok_response r ->
      check_parity "discovery" exp r;
      Alcotest.(check string) "byte-identical to the dead primary"
        primary_r.Proto.stdout r.Proto.stdout
    | resp -> Alcotest.failf "discovery: %a" Proto.pp_response resp)
  | Error f -> Alcotest.failf "discovery: %a" Failover.pp_failure f);
  (* a second call must find the promoted standby without promoting *)
  (match
     Failover.call ~attempts_per_server:4 ~base_delay:0.05 ~seed:2
       ~servers:[ a; b ] exp.req
   with
  | Ok o ->
    Alcotest.(check bool) "no second promotion" false o.Failover.promoted;
    Alcotest.(check string) "still the standby" b o.Failover.server
  | Error f -> Alcotest.failf "post-promotion: %a" Failover.pp_failure f);
  audit_standby ~cycle:(-1) ~standby_socket:b ~spool_s [ (exp, primary_r) ];
  Standby.stop standby;
  (* the receiver's metrics file: valid JSONL carrying the replication
     lag histogram *)
  let lines = ref 0 in
  let saw_repl = ref false in
  let ic = open_in metrics in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       (match Jsonv.of_string line with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "bad metrics line %d: %s" !lines msg);
       let contains hay needle =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       if contains line "repl.lag" then saw_repl := true
     done
   with End_of_file -> close_in ic);
  Alcotest.(check bool) "metrics non-empty" true (!lines > 0);
  Alcotest.(check bool) "replication lag recorded" true !saw_repl;
  Alcotest.(check bool) (Fmt.str "kills %d >= 10" !kills) true (!kills >= 10)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "shipframe-roundtrip" `Quick test_shipframe_roundtrip;
    Alcotest.test_case "shipframe-rejects" `Quick test_shipframe_rejects;
    Alcotest.test_case "backoff-ceiling" `Quick test_backoff_ceiling;
    Alcotest.test_case "receiver-fuzz" `Quick test_receiver_fuzz;
    Alcotest.test_case "shipper-chaos-resync" `Quick test_shipper_chaos_resync;
    Alcotest.test_case "streaming-progress" `Slow test_streaming_progress;
    Alcotest.test_case "failover-soak" `Slow test_failover_soak;
  ]
