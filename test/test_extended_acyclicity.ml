(** Tests for joint acyclicity and the restricted-chase checker. *)

open Chase
open Test_util

(* ---------------- joint acyclicity ---------------- *)

let test_ja_classics () =
  Alcotest.(check bool) "example2 not JA" false
    (Joint.is_jointly_acyclic Families.example2);
  Alcotest.(check bool) "separator is JA" true
    (Joint.is_jointly_acyclic Families.separator);
  Alcotest.(check bool) "chain is JA" true
    (Joint.is_jointly_acyclic (Families.sl_chain 4));
  Alcotest.(check bool) "full rules trivially JA" true
    (Joint.is_jointly_acyclic (parse "e(X, Y), e(Y, Z) -> e(X, Z)."))

let test_ja_strictly_beyond_wa () =
  (* the JA \ WA witness: the null at q2 cannot cover both body positions
     of Z in the second rule, so no existential depends on itself *)
  let rules =
    parse "p(X, Y) -> q(Y, Z). q(Y, Z), r(Z) -> p(Y, Z)."
  in
  Alcotest.(check bool) "not WA (dangerous position cycle)" false
    (Weak.is_weakly_acyclic rules);
  Alcotest.(check bool) "JA" true (Joint.is_jointly_acyclic rules);
  (* and JA is right: the so-chase terminates *)
  Alcotest.(check bool) "so-chase of crit terminates" true
    (crit_chase_terminates Variant.Semi_oblivious rules)

let test_ja_certificate () =
  match Joint.check Families.example2 with
  | None -> Alcotest.fail "expected a cyclic dependency"
  | Some cycle -> Alcotest.(check bool) "nonempty cycle" true (cycle <> [])

(* WA ⟹ JA on random rule sets *)
let wa_implies_ja =
  qcheck ~count:300 "weakly acyclic ⟹ jointly acyclic"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      (not (Weak.is_weakly_acyclic rules)) || Joint.is_jointly_acyclic rules)

(* JA is sound for the semi-oblivious chase *)
let ja_sound =
  qcheck ~count:150 "JA sound for the semi-oblivious chase"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      (not (Joint.is_jointly_acyclic rules))
      || crit_chase_terminates ~budget:20_000 Variant.Semi_oblivious rules)

(* ---------------- model-faithful acyclicity ---------------- *)

let test_mfa_classics () =
  Alcotest.(check bool) "example2 not MFA" false (Mfa.is_mfa Families.example2);
  Alcotest.(check bool) "separator is MFA" true (Mfa.is_mfa Families.separator);
  Alcotest.(check bool) "chain is MFA" true (Mfa.is_mfa (Families.sl_chain 4));
  Alcotest.(check bool) "thm2 counterexample is MFA" true
    (Mfa.is_mfa Families.thm2_counterexample);
  Alcotest.(check bool) "datalog is MFA" true
    (Mfa.is_mfa (parse "e(X, Y), e(Y, Z) -> e(X, Z)."))

let test_mfa_certificate () =
  match Mfa.check Families.example2 with
  | `Not_mfa msg -> Alcotest.(check bool) "message nonempty" true (msg <> "")
  | `Mfa | `Unknown _ -> Alcotest.fail "expected a cyclic term"

let test_mfa_beyond_ja () =
  (* the JA witness is of course also MFA *)
  let rules = parse "p(X, Y) -> q(Y, Z). q(Y, Z), r(Z) -> p(Y, Z)." in
  Alcotest.(check bool) "JA witness is MFA" true (Mfa.is_mfa rules)

(* JA ⟹ MFA on random sets (the sufficient-condition lattice) *)
let ja_implies_mfa =
  qcheck ~count:150 "jointly acyclic ⟹ MFA"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.guarded ~seed () in
      (not (Joint.is_jointly_acyclic rules)) || Mfa.is_mfa rules)

(* MFA sound for the semi-oblivious chase *)
let mfa_sound =
  qcheck ~count:150 "MFA sound for the semi-oblivious chase"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (Mfa.is_mfa rules))
      || crit_chase_terminates ~budget:20_000 Variant.Semi_oblivious rules)

(* MFA is genuinely incomplete even on linear TGDs: the named witness
   terminates under the so-chase yet builds a cyclic skolem term *)
let test_mfa_incomplete_witness () =
  let rules = Families.mfa_incomplete_witness in
  Alcotest.(check bool) "so-chase terminates" true
    (crit_chase_terminates ~budget:20_000 Variant.Semi_oblivious rules);
  Alcotest.(check bool) "yet not MFA" false (Mfa.is_mfa rules);
  (* and the exact Theorem-2 procedure is right where MFA is not *)
  Alcotest.(check bool) "critical-WA is exact" true
    (Verdict.is_terminating
       (Linear.check ~standard:false ~variant:Variant.Semi_oblivious rules))

(* ---------------- restricted checker ---------------- *)

let answer rules = Verdict.answer (Restricted.check rules)

let test_restricted_separator_terminates () =
  Alcotest.(check bool) "restricted separator: single-head linear" true
    (Classify.is_single_head Families.restricted_separator = false);
  (* two head atoms: not single-head, so the probe answers Unknown *)
  Alcotest.(check string) "two-head separator stays unknown" "unknown"
    (Verdict.answer_to_string (answer Families.restricted_separator))

let test_restricted_divergence_witnessed () =
  Alcotest.(check string) "example2 diverges restrictedly" "diverges"
    (Verdict.answer_to_string (answer Families.example2))

let test_restricted_single_head_probe () =
  let rules = parse "q0(X) -> q1(X, Z). q1(X, Y) -> q2(Y)." in
  Alcotest.(check bool) "single-head linear" true
    (Classify.is_single_head rules && Classify.is_linear rules);
  (* weakly acyclic, so the sufficient path answers first *)
  Alcotest.(check string) "terminates" "terminates"
    (Verdict.answer_to_string (answer rules))

let test_restricted_single_head_nontrivial () =
  (* not WA (dangerous cycle), single-head linear, restrictedly
     terminating on the generic instance: gets the §4 probe verdict *)
  let rules = parse "e(X, Y) -> e(Y, X)." in
  (* full rule: WA, terminates trivially; use an existential variant *)
  ignore rules;
  let rules = parse "e(X, Y) -> f(Y, Z). f(X, Y) -> e(Y, X)." in
  match Verdict.answer (Restricted.check rules) with
  | Verdict.Terminates | Verdict.Diverges -> ()
  | Verdict.Unknown -> Alcotest.fail "single-head linear should get a verdict"

(* restricted ⊇ semi-oblivious: if the so-chase of crit terminates, the
   restricted chase terminates on the generic instance too *)
let restricted_below_so =
  qcheck ~count:100 "so-termination implies restricted termination (probe)"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules = Random_tgds.linear ~seed () in
      (not (crit_chase_terminates Variant.Semi_oblivious rules))
      ||
      let generic = Critical.generic_of_rules rules in
      let config =
        {
          Engine.variant = Variant.Restricted;
          limits = Limits.make ~max_triggers:20_000 ~max_atoms:80_000 ();
        }
      in
      (Engine.run ~config rules (Instance.to_list generic)).Engine.status
      = Engine.Terminated)

let test_decide_dispatches_restricted () =
  let v = Decide.check ~variant:Variant.Restricted Families.example2 in
  Alcotest.(check string) "decide routes to restricted checker" "diverges"
    (Verdict.answer_to_string (Verdict.answer v))

let suite =
  [
    Alcotest.test_case "JA classics" `Quick test_ja_classics;
    Alcotest.test_case "JA strictly beyond WA" `Quick test_ja_strictly_beyond_wa;
    Alcotest.test_case "JA certificate" `Quick test_ja_certificate;
    wa_implies_ja;
    ja_sound;
    Alcotest.test_case "MFA classics" `Quick test_mfa_classics;
    Alcotest.test_case "MFA certificate" `Quick test_mfa_certificate;
    Alcotest.test_case "MFA beyond JA" `Quick test_mfa_beyond_ja;
    ja_implies_mfa;
    mfa_sound;
    Alcotest.test_case "MFA incomplete on linear (witness)" `Quick
      test_mfa_incomplete_witness;
    Alcotest.test_case "restricted: two-head separator unknown" `Quick
      test_restricted_separator_terminates;
    Alcotest.test_case "restricted: divergence witnessed" `Quick
      test_restricted_divergence_witnessed;
    Alcotest.test_case "restricted: single-head probe" `Quick
      test_restricted_single_head_probe;
    Alcotest.test_case "restricted: nontrivial single-head" `Quick
      test_restricted_single_head_nontrivial;
    restricted_below_so;
    Alcotest.test_case "decide dispatches restricted" `Quick
      test_decide_dispatches_restricted;
  ]
