(** End-to-end tests over the rule corpus in data/ — the files a CLI user
    would feed to [chase] and [chase-termination]. *)

open Chase
open Test_util

let read = read_data

let test_university () =
  let rules = Parser.parse_rules_exn (read "university.chase") in
  Alcotest.(check int) "23 axioms" 23 (List.length rules);
  Alcotest.(check string) "simple linear" "simple-linear"
    (Classify.cls_to_string (Classify.classify rules));
  List.iter
    (fun variant ->
      Alcotest.(check bool)
        (Variant.to_string variant ^ " terminates")
        true
        (Verdict.is_terminating (Decide.check ~variant rules)))
    [ Variant.Oblivious; Variant.Semi_oblivious ];
  (* and the chase on a small ABox stays small and is a model *)
  let abox = parse_facts "full_professor(knuth). phd_student(student1)." in
  let result = chase ~variant:Variant.Restricted rules abox in
  Alcotest.(check bool) "terminates on the ABox" true
    (result.Engine.status = Engine.Terminated);
  Alcotest.(check bool) "is a model" true
    (Engine.is_model rules result.Engine.instance)

let test_genealogy () =
  let rules = Parser.parse_rules_exn (read "genealogy.chase") in
  Alcotest.(check string) "guarded (f6 is covered by its parent_of atom)"
    "guarded"
    (Classify.cls_to_string (Classify.classify rules));
  (* the guarded procedure finds the recurring-type pump: exact diverges *)
  let v = Decide.check ~budget:3_000 ~variant:Variant.Semi_oblivious rules in
  Alcotest.(check string) "diverges by guarded-types" "diverges"
    (Verdict.answer_to_string (Verdict.answer v));
  (* the linear fragment is decided exactly: divergent *)
  let linear_fragment = List.filter Classify.rule_is_linear rules in
  Alcotest.(check bool) "linear fragment diverges" true
    (Verdict.is_diverging
       (Decide.check ~variant:Variant.Semi_oblivious linear_fragment))

let test_company_mapping () =
  match Parser.parse_program (read "company_mapping.chase") with
  | Error msg -> Alcotest.fail msg
  | Ok (rules, facts) ->
    Alcotest.(check int) "seven dependencies" 7 (List.length rules);
    Alcotest.(check int) "six source facts" 6 (List.length facts);
    Alcotest.(check bool) "weakly acyclic" true (Weak.is_weakly_acyclic rules);
    let result = chase ~variant:Variant.Restricted rules facts in
    Alcotest.(check bool) "universal solution computed" true
      (result.Engine.status = Engine.Terminated);
    (* the invented manager of colossus works on it *)
    let q =
      Query.make_exn ~answer_vars:[ "M" ]
        [
          Atom.of_list "managed_by" [ Term.Const "colossus"; Term.Var "M" ];
          Atom.of_list "works_on" [ Term.Var "M"; Term.Const "colossus" ];
        ]
    in
    Alcotest.(check int) "manager works on own project" 1
      (List.length (Query.answers q result.Engine.instance))

let test_divergent_zoo () =
  let rules = Parser.parse_rules_exn (read "divergent_zoo.chase") in
  let by_name n = List.filter (fun r -> Tgd.name r = n) rules in
  Alcotest.(check bool) "z1 diverges (o and so)" true
    (Verdict.is_diverging (Decide.check ~variant:Variant.Semi_oblivious (by_name "z1")));
  Alcotest.(check bool) "z2 separates" true
    (Verdict.is_diverging (Decide.check ~variant:Variant.Oblivious (by_name "z2"))
    && Verdict.is_terminating
         (Decide.check ~variant:Variant.Semi_oblivious (by_name "z2")));
  Alcotest.(check bool) "z3 guarded diverges" true
    (Verdict.is_diverging (Decide.check ~variant:Variant.Semi_oblivious (by_name "z3")))

let suite =
  [
    Alcotest.test_case "university ontology" `Quick test_university;
    Alcotest.test_case "genealogy" `Quick test_genealogy;
    Alcotest.test_case "company mapping" `Quick test_company_mapping;
    Alcotest.test_case "divergent zoo" `Quick test_divergent_zoo;
  ]
