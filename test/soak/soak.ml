(** Process-level chaos soak: a real [chased] under SIGKILL loops.

    Repeatedly forks the daemon, fires concurrent client traffic at it
    (durable and plain), kills it with SIGKILL at awkward moments, and
    restarts it against the same spool.  A final graceful life must
    drain the spool (boot recovery — an acknowledged durable request is
    never lost), serve every durable request byte-identical to the
    in-process {!Chase.Driver} (what the single-shot CLIs print), and
    shut down cleanly with a valid metrics file.

    Wall-clock bounded: [--seconds N] (default 20).  Exits non-zero on
    any violated invariant and prints the tallies either way.

    This complements the in-process soak in [test_service_chaos.ml]:
    that one injects faults inside a single process; this one proves the
    same invariants across real process boundaries and real SIGKILL. *)

open Chase

let usage = "soak --daemon PATH [--seconds N] [--dir DIR]"

let fail fmt = Fmt.kstr (fun m -> prerr_endline ("soak: FAIL: " ^ m); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)

let daemon = ref ""
let seconds = ref 20.
let dir = ref ""

let () =
  Arg.parse
    [
      ("--daemon", Arg.Set_string daemon, "PATH chased executable");
      ("--seconds", Arg.Set_float seconds, "N wall-clock bound (default 20)");
      ("--dir", Arg.Set_string dir, "DIR scratch directory");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !daemon = "" then (
    prerr_endline usage;
    exit 64)

let dir =
  if !dir <> "" then !dir
  else
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chase-soak-%d" (Unix.getpid ()))

let () = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
let socket = Filename.concat dir "chased.sock"
let spool_dir = Filename.concat dir "spool"
let metrics = Filename.concat dir "metrics.jsonl"
let daemon_log = Filename.concat dir "daemon.log"

(* per-process trace shards: the daemon appends its spans to one file
   across all its lives, this process writes the client roots; `make
   soak` merges them with `chasec trace-merge` and validates the tree *)
let trace_daemon = Filename.concat dir "chased.trace"
let trace_client = Filename.concat dir "client.trace"

(* ------------------------------------------------------------------ *)
(* Workload: one terminating program, sized so a run takes long enough
   for kills to land mid-flight; budget generous so the output is the
   terminated instance (exhaustion output embeds wall-clock time and
   could never be byte-stable). *)

let cycle_graph n =
  let b = Buffer.create 256 in
  Buffer.add_string b "t: e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "e(v%d, v%d).\n" i ((i + 1) mod n))
  done;
  Buffer.contents b

let budget = 8_000

let driver_bytes op ~src ~quiet =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  let fout = Format.formatter_of_buffer out
  and ferr = Format.formatter_of_buffer err in
  let code =
    match op with
    | Proto.Chase ->
      Driver.chase
        (Driver.chase_opts ~budget ~max_atoms:(4 * budget) ~quiet ())
        ~file:"soak.chase" ~src ~out:fout ~err:ferr
    | Proto.Decide ->
      Driver.decide
        (Driver.decide_opts ~budget ())
        ~file:"soak.chase" ~src ~out:fout ~err:ferr
    | _ -> assert false
  in
  Format.pp_print_flush fout ();
  Format.pp_print_flush ferr ();
  (code, Buffer.contents out, Buffer.contents err)

type expected = { req : Proto.request; code : int; out : string; err : string }

let corpus =
  List.map
    (fun (op, src, quiet, durable) ->
      let code, out, err = driver_bytes op ~src ~quiet in
      let req =
        Proto.request ~file:"soak.chase" ~program:src ~budget ~quiet ~durable
          op
      in
      { req; code; out; err })
    [
      (Proto.Chase, cycle_graph 16, true, true);
      (Proto.Chase, cycle_graph 17, true, true);
      (Proto.Chase, cycle_graph 12, false, false);
      (Proto.Decide, "p(X, Y) -> p(Y, Z).\n", false, false);
    ]

(* ------------------------------------------------------------------ *)
(* Tallies                                                             *)

let m = Mutex.create ()
let kills = ref 0
let requests = ref 0
let oks = ref 0
let gave_up = ref 0
let parity = ref 0

let bump r = Mutex.protect m (fun () -> incr r)

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)

let start_daemon ~with_metrics =
  if Sys.file_exists socket then Sys.remove socket;
  let log =
    Unix.openfile daemon_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let args =
    [ !daemon; socket; "--spool"; spool_dir; "--workers"; "4"; "--queue"; "8";
      "--trace-shard"; trace_daemon ]
    @ (if with_metrics then [ "--metrics"; metrics ] else [])
  in
  let pid =
    Unix.create_process !daemon (Array.of_list args) Unix.stdin Unix.stdout log
  in
  Unix.close log;
  (* wait for the socket to appear, but bail if the daemon died *)
  let rec poll n =
    if Sys.file_exists socket then ()
    else if n = 0 then fail "daemon never bound %s" socket
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, st ->
        fail "daemon died on startup (%s)"
          (match st with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
      ignore (Unix.select [] [] [] 0.05);
      poll (n - 1)
    end
  in
  poll 200;
  pid

let sigkill pid =
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  bump kills

(* ------------------------------------------------------------------ *)
(* Client traffic                                                      *)

let check_parity e (r : Proto.result) =
  if
    r.Proto.exit_code <> e.code || r.Proto.stdout <> e.out
    || r.Proto.stderr <> e.err
  then
    fail "parity: op %s got (%d, %S, %S), want (%d, %S, %S)"
      (Proto.op_to_string e.req.Proto.op)
      r.Proto.exit_code r.Proto.stdout r.Proto.stderr e.code e.out e.err;
  bump parity

let requester stop seed =
  let i = ref 0 in
  while not !stop do
    let e = List.nth corpus (!i mod List.length corpus) in
    incr i;
    bump requests;
    (match
       Client.call_retry ~attempts:2 ~seed:(seed + !i) ~socket e.req
     with
    | Ok (Proto.Ok_response r) ->
      bump oks;
      check_parity e r
    | Ok _ -> assert false
    | Error (Client.Rejected (Proto.Overloaded _)) -> () (* structured shed *)
    | Error (Client.Rejected resp) ->
      fail "definitive rejection: %a" Proto.pp_response resp
    | Error (Client.Gave_up _) -> bump gave_up (* daemon was dead: fine *));
    ignore (Unix.select [] [] [] 0.01)
  done

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let () =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. !seconds in
  let stop = ref false in
  let threads = List.init 6 (fun k -> Thread.create (fun () -> requester stop (k * 1000)) ()) in
  (* kill/restart loop: leave a quarter of the bound (at least 5s) for
     the final graceful life *)
  let reserve = Float.max 5. (!seconds /. 4.) in
  let cycle = ref 0 in
  while Unix.gettimeofday () < deadline -. reserve do
    let pid = start_daemon ~with_metrics:false in
    (* vary the lifetime so kills land at different run phases *)
    ignore (Unix.select [] [] [] (0.15 +. (0.05 *. float_of_int (!cycle mod 7))));
    sigkill pid;
    incr cycle
  done;
  stop := true;
  List.iter Thread.join threads;

  (* final graceful life: boot recovery must drain the spool *)
  let pid = start_daemon ~with_metrics:true in
  let spool = Spool.create ~dir:spool_dir in
  let rec drain n =
    match Spool.pending spool with
    | [] -> ()
    | keys when n = 0 ->
      fail "lost acknowledged requests: %d still pending after recovery"
        (List.length keys)
    | _ ->
      ignore (Unix.select [] [] [] 0.1);
      drain (n - 1)
  in
  drain 300;
  (* replay every durable request: served from the spool, byte-identical.
     Each replay is traced — this process mints the root and writes the
     client shard, the daemon writes its own server spans *)
  let shard = Tracectx.Shard.open_ ~proc:"soak" trace_client in
  List.iter
    (fun e ->
      if e.req.Proto.durable then begin
        bump requests;
        let root = Tracectx.genesis () in
        let t0_us = Tracectx.now_us () in
        let req = { e.req with Proto.trace = Some (Tracectx.to_string root) } in
        match Client.call_retry ~attempts:4 ~socket req with
        | Ok (Proto.Ok_response r) ->
          Tracectx.Shard.span shard ~ctx:root ~name:"client.request"
            ~ts_us:t0_us
            ~dur_us:(Tracectx.now_us () -. t0_us)
            ();
          bump oks;
          check_parity e r
        | Ok _ -> assert false
        | Error f -> fail "durable replay failed: %a" Client.pp_failure f
      end)
    corpus;
  Tracectx.Shard.close shard;
  (* graceful shutdown *)
  (match Client.call_retry ~attempts:4 ~socket (Proto.request Proto.Shutdown) with
  | Ok _ -> ()
  | Error f -> fail "shutdown failed: %a" Client.pp_failure f);
  ignore (Unix.waitpid [] pid);

  let k = !kills and rq = !requests and ok = !oks in
  Printf.printf
    "soak OK: %d kills, %d requests (%d ok, %d gave up during kills), %d \
     parity checks, %.1fs\n"
    k rq ok !gave_up !parity
    (Unix.gettimeofday () -. t0);
  if k < 3 then fail "too few kills (%d) for a meaningful soak" k;
  if !parity = 0 then fail "no parity checks ran";
  if ok = 0 then fail "no request ever succeeded"
