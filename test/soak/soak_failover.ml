(** Process-level failover soak: a real replicated [chased] pair.

    A standby ([--standby-of]) runs for the whole drill while a primary
    ([--ship-to], semi-synchronous) is SIGKILLed and restarted at
    awkward moments with concurrent durable traffic in flight.  After
    the last kill the failover client discovers the dead primary,
    promotes the standby over the wire, and the drill audits the
    doctrine: the shipped spool drains (an acknowledged durable request
    is never lost), every request the dead primary acknowledged is
    re-served by the promoted standby byte-identical to the in-process
    {!Chase.Driver}, and the receiver's metrics file — replication lag
    histogram included — validates.

    Wall-clock bounded: [--seconds N] (default 20).  Exits non-zero on
    any violated invariant, prints the tallies (takeover latency
    included) either way.

    This complements the in-process replica suite in [test_replica.ml]:
    that one injects ship-stream faults inside one process; this one
    proves promotion across real process boundaries and real SIGKILL. *)

open Chase

let usage = "soak_failover --daemon PATH [--seconds N] [--dir DIR]"

let fail fmt =
  Fmt.kstr (fun m -> prerr_endline ("soak-failover: FAIL: " ^ m); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)

let daemon = ref ""
let seconds = ref 20.
let dir = ref ""

let () =
  Arg.parse
    [
      ("--daemon", Arg.Set_string daemon, "PATH chased executable");
      ("--seconds", Arg.Set_float seconds, "N wall-clock bound (default 20)");
      ("--dir", Arg.Set_string dir, "DIR scratch directory");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !daemon = "" then (
    prerr_endline usage;
    exit 64)

let dir =
  if !dir <> "" then !dir
  else
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chase-soak-failover-%d" (Unix.getpid ()))

let () = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
let primary_socket = Filename.concat dir "primary.sock"
let standby_socket = Filename.concat dir "standby.sock"
let ship_socket = Filename.concat dir "ship.sock"
let spool_p = Filename.concat dir "spool-primary"
let spool_s = Filename.concat dir "spool-standby"
let metrics = Filename.concat dir "metrics.jsonl"
let daemon_log = Filename.concat dir "daemon.log"

(* only gracefully-shut-down processes get a trace shard: the primary is
   SIGKILLed mid-request, which could orphan child spans; the standby
   lives for the whole drill and the audit replays are traced here *)
let trace_standby = Filename.concat dir "standby.trace"
let trace_client = Filename.concat dir "client.trace"

(* ------------------------------------------------------------------ *)
(* Workload (see soak.ml for the sizing rationale)                     *)

let cycle_graph n =
  let b = Buffer.create 256 in
  Buffer.add_string b "t: e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "e(v%d, v%d).\n" i ((i + 1) mod n))
  done;
  Buffer.contents b

let budget = 8_000

let driver_bytes op ~src ~quiet =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  let fout = Format.formatter_of_buffer out
  and ferr = Format.formatter_of_buffer err in
  let code =
    match op with
    | Proto.Chase ->
      Driver.chase
        (Driver.chase_opts ~budget ~max_atoms:(4 * budget) ~quiet ())
        ~file:"soak.chase" ~src ~out:fout ~err:ferr
    | _ -> assert false
  in
  Format.pp_print_flush fout ();
  Format.pp_print_flush ferr ();
  (code, Buffer.contents out, Buffer.contents err)

type expected = { req : Proto.request; code : int; out : string; err : string }

let corpus =
  List.map
    (fun (src, quiet) ->
      let code, out, err = driver_bytes Proto.Chase ~src ~quiet in
      let req =
        Proto.request ~file:"soak.chase" ~program:src ~budget ~quiet
          ~durable:true Proto.Chase
      in
      { req; code; out; err })
    [ (cycle_graph 16, true); (cycle_graph 17, true); (cycle_graph 12, false) ]

(* ------------------------------------------------------------------ *)
(* Tallies                                                             *)

let m = Mutex.create ()
let kills = ref 0
let requests = ref 0
let oks = ref 0
let gave_up = ref 0
let parity = ref 0
let acked : (string, expected) Hashtbl.t = Hashtbl.create 16

let bump r = Mutex.protect m (fun () -> incr r)

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)

let live_pids = ref []

let () =
  at_exit (fun () ->
      List.iter
        (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        !live_pids)

let spawn args =
  let log =
    Unix.openfile daemon_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let pid =
    Unix.create_process !daemon
      (Array.of_list (!daemon :: args))
      Unix.stdin Unix.stdout log
  in
  Unix.close log;
  live_pids := pid :: !live_pids;
  pid

let reap pid = live_pids := List.filter (fun p -> p <> pid) !live_pids

let await_socket pid socket =
  let rec poll n =
    if Sys.file_exists socket then ()
    else if n = 0 then fail "daemon never bound %s" socket
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, st ->
        reap pid;
        fail "daemon died on startup (%s); see %s"
          (match st with
          | Unix.WEXITED c -> Printf.sprintf "exit %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s)
          daemon_log);
      ignore (Unix.select [] [] [] 0.05);
      poll (n - 1)
    end
  in
  poll 200;
  pid

let start_standby () =
  if Sys.file_exists standby_socket then Sys.remove standby_socket;
  await_socket
    (spawn
       [
         standby_socket; "--spool"; spool_s; "--standby-of"; ship_socket;
         "--metrics"; metrics; "--trace-shard"; trace_standby;
       ])
    standby_socket

let start_primary () =
  if Sys.file_exists primary_socket then Sys.remove primary_socket;
  await_socket
    (spawn
       [
         primary_socket; "--spool"; spool_p; "--ship-to"; ship_socket;
         "--sync-timeout"; "1.0"; "--workers"; "4"; "--queue"; "8";
       ])
    primary_socket

let sigkill pid =
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  reap pid;
  bump kills

(* ------------------------------------------------------------------ *)
(* Client traffic                                                      *)

let check_parity who e (r : Proto.result) =
  if
    r.Proto.exit_code <> e.code || r.Proto.stdout <> e.out
    || r.Proto.stderr <> e.err
  then
    fail "%s parity: op %s got (%d, %S, %S), want (%d, %S, %S)" who
      (Proto.op_to_string e.req.Proto.op)
      r.Proto.exit_code r.Proto.stdout r.Proto.stderr e.code e.out e.err;
  bump parity

let requester stop seed =
  let i = ref 0 in
  while not !stop do
    let e = List.nth corpus (!i mod List.length corpus) in
    incr i;
    bump requests;
    (match
       Client.call_retry ~attempts:2 ~seed:(seed + !i) ~socket:primary_socket
         e.req
     with
    | Ok (Proto.Ok_response r) ->
      bump oks;
      check_parity "primary" e r;
      (* acknowledged on the primary: the standby now owes these bytes *)
      Mutex.protect m (fun () ->
          Hashtbl.replace acked (Proto.request_key e.req) e)
    | Ok _ -> assert false
    | Error (Client.Rejected (Proto.Overloaded _)) -> () (* structured shed *)
    | Error (Client.Rejected resp) ->
      fail "definitive rejection: %a" Proto.pp_response resp
    | Error (Client.Gave_up _) -> bump gave_up (* daemon was dead: fine *));
    ignore (Unix.select [] [] [] 0.01)
  done

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let () =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. !seconds in
  let stop = ref false in
  let standby_pid = start_standby () in
  let threads =
    List.init 4 (fun k -> Thread.create (fun () -> requester stop (k * 1000)) ())
  in
  (* kill/restart loop against the same primary spool: each new life
     runs boot recovery, reconnects the shipper and resyncs the standby.
     Leave a reserve for promotion and the audit. *)
  let reserve = Float.max 6. (!seconds /. 4.) in
  let cycle = ref 0 in
  let last_pid = ref None in
  while Unix.gettimeofday () < deadline -. reserve do
    let pid = start_primary () in
    ignore
      (Unix.select [] [] [] (0.15 +. (0.05 *. float_of_int (!cycle mod 7))));
    if Unix.gettimeofday () < deadline -. reserve then begin
      sigkill pid;
      incr cycle
    end
    else last_pid := Some pid
  done;
  (* the final life dies too — this kill is the one we fail over from *)
  let t_kill =
    match !last_pid with
    | Some pid ->
      sigkill pid;
      Unix.gettimeofday ()
    | None ->
      let pid = start_primary () in
      ignore (Unix.select [] [] [] 0.2);
      sigkill pid;
      Unix.gettimeofday ()
  in
  stop := true;
  List.iter Thread.join threads;
  if Hashtbl.length acked = 0 then
    fail "no durable request was ever acknowledged: kills landed too early";

  (* failover: the client discovers the dead primary, promotes the
     standby over the wire, and the promoted standby serves *)
  let probe = (List.hd corpus).req in
  let takeover =
    match
      Failover.call ~attempts_per_server:6 ~base_delay:0.05 ~seed:1
        ~servers:[ primary_socket; standby_socket ]
        probe
    with
    | Ok o ->
      if o.Failover.server <> standby_socket then
        fail "served by %s, wanted the standby" o.Failover.server;
      if not o.Failover.promoted then
        fail "the standby was already primary before promotion";
      (match o.Failover.response with
      | Proto.Ok_response r -> check_parity "takeover" (List.hd corpus) r
      | resp -> fail "takeover answered %a" Proto.pp_response resp);
      Unix.gettimeofday () -. t_kill
    | Error f -> fail "failover: %a" Failover.pp_failure f
  in

  (* zero lost acknowledged requests: the shipped spool drains *)
  let spool = Spool.create ~dir:spool_s in
  let rec drain n =
    match Spool.pending spool with
    | [] -> ()
    | keys when n = 0 ->
      fail "lost acknowledged requests: %d still pending after promotion"
        (List.length keys)
    | _ ->
      ignore (Unix.select [] [] [] 0.1);
      drain (n - 1)
  in
  drain 300;
  (* every request the dead primary acknowledged, byte-identical; the
     audit replays are traced — this process writes the client roots *)
  let shard = Tracectx.Shard.open_ ~proc:"soak" trace_client in
  Hashtbl.iter
    (fun _ e ->
      bump requests;
      let root = Tracectx.genesis () in
      let t0_us = Tracectx.now_us () in
      let req = { e.req with Proto.trace = Some (Tracectx.to_string root) } in
      match Client.call_retry ~attempts:4 ~socket:standby_socket req with
      | Ok (Proto.Ok_response r) ->
        Tracectx.Shard.span shard ~ctx:root ~name:"client.request"
          ~ts_us:t0_us
          ~dur_us:(Tracectx.now_us () -. t0_us)
          ();
        bump oks;
        check_parity "standby" e r
      | Ok _ -> assert false
      | Error f -> fail "standby replay failed: %a" Client.pp_failure f)
    acked;
  Tracectx.Shard.close shard;
  (* graceful shutdown of the promoted standby *)
  (match
     Client.call_retry ~attempts:4 ~socket:standby_socket
       (Proto.request Proto.Shutdown)
   with
  | Ok _ -> ()
  | Error f -> fail "shutdown failed: %a" Client.pp_failure f);
  ignore (Unix.waitpid [] standby_pid);
  reap standby_pid;

  (* the receiver's metrics file must carry the replication artifacts
     (obs_check validates the structure separately) *)
  let ic = open_in metrics in
  let saw_lag = ref false and saw_applied = ref false in
  (try
     while true do
       let line = input_line ic in
       if contains line "repl.lag" then saw_lag := true;
       if contains line "repl.applied" then saw_applied := true
     done
   with End_of_file -> close_in ic);
  if not !saw_applied then fail "metrics never recorded repl.applied";
  if not !saw_lag then fail "metrics never recorded the repl.lag histogram";

  let k = !kills and rq = !requests and ok = !oks in
  Printf.printf
    "soak-failover OK: %d kills, takeover in %.3fs, %d requests (%d ok, %d \
     gave up during kills), %d acknowledged audited, %d parity checks, %.1fs\n"
    k takeover rq ok !gave_up (Hashtbl.length acked) !parity
    (Unix.gettimeofday () -. t0);
  if k < 3 then fail "too few kills (%d) for a meaningful soak" k;
  if !parity = 0 then fail "no parity checks ran";
  if ok = 0 then fail "no request ever succeeded"
