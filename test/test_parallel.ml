(** The multicore parallel chase: determinism audit and pool battery.

    The doctrine under test (DESIGN.md §3.10): a parallel run is the
    {e same run} as a sequential one — applied trigger sequence, null
    stamps, journal bytes, Obs counter totals, exhaustion verdicts — no
    matter how many domains compute the matching, no matter how the
    work-stealing schedule falls.  The battery perturbs the schedule on
    purpose (randomized domain counts, injected per-domain delays via
    {!Faults.Parallel_delays}) and asserts bit-identity every time; it
    also pins the pool's contract (positional results, exception
    propagation, idempotent shutdown, no leaked domains) and the atomic
    matcher counters (parallel totals = sequential totals). *)

open Chase
open Test_util

(* ------------------------------------------------------------------ *)
(* Pool contract                                                       *)
(* ------------------------------------------------------------------ *)

let pool_map_positional () =
  let rand = Random.State.make [| 0xC0DE |] in
  for _ = 1 to 20 do
    let domains = 1 + Random.State.int rand 6 in
    let n = Random.State.int rand 51 in
    let p = Parallel.create ~domains in
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown p)
      (fun () ->
        let out = Parallel.map p n (fun i -> (i * i) + 1) in
        Alcotest.(check (array int))
          (Fmt.str "map %d events over %d domains" n domains)
          (Array.init n (fun i -> (i * i) + 1))
          out;
        let st = Parallel.stats p in
        Alcotest.(check int)
          "every event computed exactly once" n
          (Array.fold_left ( + ) 0 st.Parallel.events);
        Alcotest.(check int) "one batch" (if n = 0 then 0 else 1)
          st.Parallel.batches)
  done

let pool_exception_propagates () =
  let p = Parallel.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown p)
    (fun () ->
      (try
         ignore (Parallel.map p 16 (fun i -> if i = 11 then failwith "boom"));
         Alcotest.fail "expected the worker exception to re-raise"
       with Failure msg -> Alcotest.(check string) "exception" "boom" msg);
      (* the batch completed and the pool is still serviceable *)
      let out = Parallel.map p 8 (fun i -> i + 1) in
      Alcotest.(check (array int))
        "pool usable after a failed batch"
        (Array.init 8 (fun i -> i + 1))
        out)

let pool_shutdown_is_idempotent () =
  let before = Parallel.live_domains () in
  let p = Parallel.create ~domains:4 in
  Alcotest.(check bool) "workers spawned" true (Parallel.live_domains () > before);
  Parallel.shutdown p;
  Parallel.shutdown p;
  Alcotest.(check int) "all workers joined" before (Parallel.live_domains ());
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Parallel.map: pool is shut down") (fun () ->
      ignore (Parallel.map p 4 Fun.id))

let domain_selection_validates () =
  Alcotest.(check bool) "parse 4" true (Parallel.parse_domains "4" = Ok 4);
  Alcotest.(check bool) "parse trims" true (Parallel.parse_domains " 2 " = Ok 2);
  Alcotest.(check bool) "parse 0 rejected" true
    (Result.is_error (Parallel.parse_domains "0"));
  Alcotest.(check bool) "parse -3 rejected" true
    (Result.is_error (Parallel.parse_domains "-3"));
  Alcotest.(check bool) "parse junk rejected" true
    (Result.is_error (Parallel.parse_domains "many"));
  Alcotest.check_raises "set_domains 0"
    (Invalid_argument "Parallel.set_domains: domains must be >= 1") (fun () ->
      Parallel.set_domains 0);
  Alcotest.check_raises "Engine.run ~domains:0"
    (Invalid_argument "Engine.run: domains must be >= 1") (fun () ->
      ignore (Engine.run ~domains:0 (parse "p(X) -> q(X).") []))

(* ------------------------------------------------------------------ *)
(* Determinism under stress                                            *)
(* ------------------------------------------------------------------ *)

(* The applied sequence, captured literally through [on_trigger]: step,
   rule index, homomorphism, invented nulls, added facts.  Bit-identity
   of two runs is equality of these sequences plus the result counters —
   strictly stronger than comparing final instances. *)
let trace ?domains ?limits ~variant ~budget rules db =
  let log = ref [] in
  let on_trigger ~step ~rule_index ~depth ~created_nulls _rule sub added =
    log := (step, rule_index, depth, created_nulls, Subst.to_list sub, added) :: !log
  in
  let limits =
    match limits with Some l -> l | None -> Limits.of_budget budget
  in
  let r =
    Engine.run ~config:{ Engine.variant; limits } ?domains ~on_trigger rules db
  in
  (r, List.rev !log)

let check_same_run ctx (r1 : Engine.result) log1 (r2 : Engine.result) log2 =
  Alcotest.(check int) (ctx ^ ": sequence length") (List.length log1)
    (List.length log2);
  List.iteri
    (fun k ((s1, i1, d1, n1, h1, a1), (s2, i2, d2, n2, h2, a2)) ->
      let step ctx' = Fmt.str "%s: step %d %s" ctx k ctx' in
      Alcotest.(check int) (step "stamp") s1 s2;
      Alcotest.(check int) (step "rule") i1 i2;
      Alcotest.(check int) (step "depth") d1 d2;
      Alcotest.(check (list int)) (step "nulls") n1 n2;
      Alcotest.(check bool)
        (step "homomorphism") true
        (List.length h1 = List.length h2
        && List.for_all2
             (fun (v1, t1) (v2, t2) -> v1 = v2 && Term.equal t1 t2)
             h1 h2);
      Alcotest.(check (list atom_testable)) (step "added facts") a1 a2)
    (List.combine log1 log2);
  Alcotest.(check (list atom_testable))
    (ctx ^ ": final instance")
    (Instance.to_sorted_list r1.Engine.instance)
    (Instance.to_sorted_list r2.Engine.instance);
  Alcotest.(check int) (ctx ^ ": nulls") r1.Engine.nulls_created
    r2.Engine.nulls_created;
  Alcotest.(check bool)
    (ctx ^ ": status") true
    (Engine.exhausted r1 = Engine.exhausted r2)

let variants = [ Variant.Oblivious; Variant.Semi_oblivious; Variant.Restricted ]

let determinism_random_domains () =
  let rand = Random.State.make [| 0xD0D0 |] in
  for seed = 0 to 11 do
    let rules = Random_tgds.guarded ~seed () in
    let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
    List.iter
      (fun variant ->
        let r1, log1 = trace ~variant ~budget:400 rules db in
        for _ = 1 to 2 do
          let domains = 2 + Random.State.int rand 5 in
          let rd, logd = trace ~domains ~variant ~budget:400 rules db in
          check_same_run
            (Fmt.str "guarded seed %d %a @%d domains" seed Variant.pp variant
               domains)
            r1 log1 rd logd
        done)
      variants
  done

let determinism_under_injected_delays () =
  let rules = parse "e(X, Y) -> e(Y, Z).  e(X, Y), e(Y, Z) -> e(X, Z)." in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let r1, log1 = trace ~variant:Variant.Oblivious ~budget:60 rules db in
  List.iter
    (fun delays ->
      Faults.Parallel_delays.arm delays;
      Fun.protect
        ~finally:Faults.Parallel_delays.reset
        (fun () ->
          let rd, logd =
            trace ~domains:4 ~variant:Variant.Oblivious ~budget:60 rules db
          in
          check_same_run
            (Fmt.str "delays %a"
               Fmt.(list ~sep:comma (pair int float))
               delays)
            r1 log1 rd logd))
    [
      [ (0, 0.002) ] (* the caller domain is the slow one *);
      [ (1, 0.003) ];
      [ (1, 0.001); (3, 0.002) ];
      [ (0, 0.001); (1, 0.001); (2, 0.001); (3, 0.001) ];
    ]

(* ------------------------------------------------------------------ *)
(* Journal byte-identity and cross-domain-count resume                 *)
(* ------------------------------------------------------------------ *)

let tmp_journal =
  let n = ref 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (incr n;
       Fmt.str "chase_par_%d_%d.jnl" (Unix.getpid ()) !n)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Session.snapshot_path path ]

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_journaled ?domains path rules db =
  let session =
    Session.start ~journal:path
      ~snapshot:(Session.snapshot_path path)
      ~variant:Variant.Oblivious ~rules ~db ()
  in
  let r =
    Engine.run
      ~config:{ Engine.variant = Variant.Oblivious; limits = Limits.of_budget 500 }
      ?domains
      ~on_trigger:(Session.on_trigger session)
      rules db
  in
  Session.finish session;
  r

let journal_bytes_identical () =
  let rules = parse "e(X, Y) -> e(Y, Z).  e(X, Y), e(Y, Z) -> e(X, Z)." in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let p1 = tmp_journal () and p4 = tmp_journal () in
  Fun.protect
    ~finally:(fun () ->
      cleanup p1;
      cleanup p4)
    (fun () ->
      let r1 = run_journaled ~domains:1 p1 rules db in
      let r4 = run_journaled ~domains:4 p4 rules db in
      Alcotest.(check int) "same steps" r1.Engine.triggers_applied
        r4.Engine.triggers_applied;
      Alcotest.(check string)
        "journal bytes identical across domain counts" (read_bytes p1)
        (read_bytes p4);
      (* a journal written at 4 domains replays under 1 domain: recover
         and finish the run sequentially, landing on the 1-domain result *)
      match
        Recovery.recover ~journal:p4
          ~snapshot:(Session.snapshot_path p4)
          ~variant:Variant.Oblivious ~rules ~db ()
      with
      | Error msg -> Alcotest.fail ("recovery failed: " ^ msg)
      | Ok report ->
        let resumed =
          Engine.run
            ~config:
              { Engine.variant = Variant.Oblivious;
                limits = Limits.of_budget 500;
              }
            ~domains:1 ~resume:report.Recovery.resume rules db
        in
        Alcotest.(check (list atom_testable))
          "resumed instance = original"
          (Instance.to_sorted_list r4.Engine.instance)
          (Instance.to_sorted_list resumed.Engine.instance))

(* ------------------------------------------------------------------ *)
(* Cancellation and exhaustion leave no domain behind                  *)
(* ------------------------------------------------------------------ *)

let exhaustion_leaves_no_domains () =
  let rules = parse "e(X, Y) -> e(Y, Z).  e(X, Y), e(Y, Z) -> e(X, Z)." in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let baseline = Parallel.live_domains () in
  List.iter
    (fun injection ->
      let plan = Faults.create [ (20, injection) ] in
      let limits =
        Faults.arm plan
          (Limits.make ~max_triggers:100_000 ~timeout:60. ~cancel:(Limits.Cancel.create ()) ())
      in
      let r = chase ~limits ~domains:4 rules db in
      Alcotest.(check bool)
        (Fmt.str "%a: structured exhaustion" Faults.pp_injection injection)
        true (exhausted r);
      Alcotest.(check int)
        (Fmt.str "%a: no leaked domain" Faults.pp_injection injection)
        baseline (Parallel.live_domains ());
      (* the degraded prefix is still provenance-sound *)
      Alcotest.(check bool)
        (Fmt.str "%a: sound prefix" Faults.pp_injection injection)
        true
        (Result.is_ok (Engine.check_provenance r ~db)))
    [ Faults.Cancel "parallel-test"; Faults.Expire_deadline;
      Faults.Trip_trigger_cap ]

(* ------------------------------------------------------------------ *)
(* Atomic matcher counters: parallel totals = sequential totals        *)
(* ------------------------------------------------------------------ *)

let stats_totals_agree () =
  let rules = Random_tgds.guarded ~seed:7 () in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let measure domains =
    let h0 = Hom.Stats.snapshot () in
    let p0 = Plan.Stats.snapshot () in
    ignore (chase ~budget:400 ~domains rules db);
    (Hom.Stats.diff h0 (Hom.Stats.snapshot ()),
     Plan.Stats.diff p0 (Plan.Stats.snapshot ()))
  in
  let h1, p1 = measure 1 in
  List.iter
    (fun domains ->
      let hd, pd = measure domains in
      let ctx s = Fmt.str "@%d domains: %s" domains s in
      Alcotest.(check int) (ctx "probes") h1.Hom.Stats.probes hd.Hom.Stats.probes;
      Alcotest.(check int) (ctx "full scans") h1.Hom.Stats.full_scans
        hd.Hom.Stats.full_scans;
      Alcotest.(check int) (ctx "candidates") h1.Hom.Stats.candidates
        hd.Hom.Stats.candidates;
      Alcotest.(check int) (ctx "matches") h1.Hom.Stats.matches
        hd.Hom.Stats.matches;
      Alcotest.(check int) (ctx "planned probe cost")
        h1.Hom.Stats.planned_probe_cost hd.Hom.Stats.planned_probe_cost;
      Alcotest.(check int) (ctx "naive probe cost")
        h1.Hom.Stats.naive_probe_cost hd.Hom.Stats.naive_probe_cost;
      Alcotest.(check int) (ctx "plans") p1.Plan.Stats.plans pd.Plan.Stats.plans;
      Alcotest.(check int) (ctx "estimates") p1.Plan.Stats.estimates
        pd.Plan.Stats.estimates)
    [ 2; 4 ]

(* PR 8's attribution caveat, closed: per-rule probe counts come from
   the matcher's domain-local candidate counters, so a parallel run's
   per-rule profile equals the sequential run's — not just the grand
   total. *)
let per_rule_probes_agree () =
  let rules = Random_tgds.guarded ~seed:11 () in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let profile domains =
    let obs = Obs.create [] in
    ignore
      (Engine.run
         ~config:
           { Engine.variant = Variant.Oblivious; limits = Limits.of_budget 300 }
         ~obs ~domains rules db);
    let m = Obs.metrics obs in
    List.map
      (fun label -> (label, Metrics.counter_value m ~label "chase.rule.probes"))
      (List.sort compare (Metrics.labels_of m "chase.rule.probes"))
  in
  let seq = profile 1 in
  Alcotest.(check bool)
    "sequential profile attributes probes" true
    (List.exists (fun (_, v) -> v > 0) seq);
  List.iter
    (fun domains ->
      Alcotest.(check (list (pair string int)))
        (Fmt.str "@%d domains: per-rule probes" domains)
        seq (profile domains))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Per-domain observability                                            *)
(* ------------------------------------------------------------------ *)

let parallel_metrics_present () =
  let rules = parse "e(X, Y) -> e(Y, Z).  e(X, Y), e(Y, Z) -> e(X, Z)." in
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let obs = Obs.create [] in
  ignore
    (Engine.run
       ~config:{ Engine.variant = Variant.Oblivious; limits = Limits.of_budget 120 }
       ~obs ~domains:3 rules db);
  let m = Obs.metrics obs in
  let total name =
    List.fold_left
      (fun acc label -> acc + Metrics.counter_value m ~label name)
      (Metrics.counter_value m name)
      (Metrics.labels_of m name)
  in
  Alcotest.(check bool) "batches counted" true (total "chase.parallel.batches" > 0);
  Alcotest.(check bool) "events counted" true (total "chase.parallel.events" > 0);
  Alcotest.(check (list string))
    "per-domain event labels"
    [ "domain0"; "domain1"; "domain2" ]
    (Metrics.labels_of m "chase.parallel.events");
  match Metrics.gauge_value m "chase.parallel.domains" with
  | Some g -> Alcotest.(check int) "domains gauge" 3 (int_of_float g)
  | None -> Alcotest.fail "chase.parallel.domains gauge missing"

let suite =
  [
    Alcotest.test_case "pool: positional results, randomized shapes" `Quick
      pool_map_positional;
    Alcotest.test_case "pool: worker exception re-raises in caller" `Quick
      pool_exception_propagates;
    Alcotest.test_case "pool: shutdown idempotent, no leaked domains" `Quick
      pool_shutdown_is_idempotent;
    Alcotest.test_case "selection: --domains/CHASE_DOMAINS validation" `Quick
      domain_selection_validates;
    Alcotest.test_case "determinism: randomized domain counts (guarded)" `Slow
      determinism_random_domains;
    Alcotest.test_case "determinism: injected per-domain delays" `Quick
      determinism_under_injected_delays;
    Alcotest.test_case "journal: bytes identical @4 vs @1, cross-resume" `Quick
      journal_bytes_identical;
    Alcotest.test_case "governance: cancellation/deadline leak no domain"
      `Quick exhaustion_leaves_no_domains;
    Alcotest.test_case "stats: parallel totals = sequential totals" `Quick
      stats_totals_agree;
    Alcotest.test_case "stats: per-rule probes exact under parallelism" `Quick
      per_rule_probes_agree;
    Alcotest.test_case "obs: per-domain parallel metrics" `Quick
      parallel_metrics_present;
  ]
