let () =
  Alcotest.run "chase"
    [
      ("logic", Test_logic.suite);
      ("parser", Test_parser.suite);
      ("parser-fuzz", Test_parser_fuzz.suite);
      ("query", Test_query.suite);
      ("egd", Test_egd.suite);
      ("core-model", Test_core_model.suite);
      ("internals", Test_internals.suite);
      ("data-files", Test_data_files.suite);
      ("sequence", Test_sequence.suite);
      ("report", Test_report.suite);
      ("classify", Test_classify.suite);
      ("engine", Test_engine.suite);
      ("plan-props", Test_plan_props.suite);
      ("differential", Test_differential.suite);
      ("parallel", Test_parallel.suite);
      ("metamorphic", Test_metamorphic.suite);
      ("faults", Test_faults.suite);
      ("persist", Test_persist.suite);
      ("acyclicity", Test_acyclicity.suite);
      ("extended-acyclicity", Test_extended_acyclicity.suite);
      ("flow", Test_flow.suite);
      ("theorems", Test_theorems.suite);
      ("lint", Test_lint.suite);
      ("reductions", Test_reductions.suite);
      ("model-theory", Test_model_theory.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("service", Test_service.suite);
      ("service-chaos", Test_service_chaos.suite);
      ("replica", Test_replica.suite);
    ]
