(** Service-layer tests: protocol framing and codecs, the budget pool,
    the single-flight cache, admission/shedding, the durable spool, and
    an in-process daemon exercised end-to-end over a real Unix-domain
    socket — including byte-parity of responses against the shared
    {!Chase.Driver} and boot recovery of spooled requests.  The
    adversarial crash drills live in {!Test_service_chaos}. *)

open Chase

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chase_svc_%d_%d%s" (Unix.getpid ()) !n suffix)

(* ------------------------------------------------------------------ *)
(* Proto: codecs                                                       *)

let test_request_roundtrip () =
  let req =
    Proto.request ~id:"42" ~file:"f.chase" ~program:"e(a,b)."
      ~variant:"oblivious" ~budget:123 ~timeout_s:1.5 ~quiet:true
      ~durable:true ~standard:false ~query:"e(X,Y) -> q(X)." Proto.Chase
  in
  match Proto.decode_request (Proto.encode_request req) with
  | Error msg -> Alcotest.fail msg
  | Ok req' ->
    Alcotest.(check bool) "roundtrip" true (req = req')

let test_request_defaults () =
  match Proto.decode_request {|{"op":"ping"}|} with
  | Error msg -> Alcotest.fail msg
  | Ok req ->
    Alcotest.(check string) "id" "0" req.Proto.id;
    Alcotest.(check bool) "standard" true req.Proto.standard;
    Alcotest.(check bool) "durable" false req.Proto.durable

let test_request_errors () =
  let err s =
    match Proto.decode_request s with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "not json" true (err "nonsense");
  Alcotest.(check bool) "not an object" true (err "[1,2]");
  Alcotest.(check bool) "missing op" true (err {|{"id":"1"}|});
  Alcotest.(check bool) "unknown op" true (err {|{"op":"frobnicate"}|})

let test_response_roundtrip () =
  let cases =
    [
      Proto.Ok_response
        { Proto.exit_code = 2; stdout = "a\nb"; stderr = "e\"s"; cached = true };
      Proto.Overloaded 0.25;
      Proto.Bad_frame "eof inside frame payload";
      Proto.Bad_request "unknown op";
      Proto.Server_error "boom";
    ]
  in
  List.iter
    (fun resp ->
      match Proto.decode_response (Proto.encode_response ~id:"7" resp) with
      | Error msg -> Alcotest.fail msg
      | Ok (id, resp') ->
        Alcotest.(check string) "id" "7" id;
        Alcotest.(check bool) "roundtrip" true (resp = resp'))
    cases

let test_request_key () =
  let base = Proto.request ~program:"p(a)." ~budget:10 Proto.Decide in
  let key = Proto.request_key base in
  (* id and deadline do not partition the cache *)
  Alcotest.(check string) "id excluded" key
    (Proto.request_key { base with Proto.id = "99" });
  Alcotest.(check string) "timeout excluded" key
    (Proto.request_key { base with Proto.timeout_s = Some 9. });
  (* everything result-bearing does *)
  Alcotest.(check bool) "program included" true
    (key <> Proto.request_key { base with Proto.program = "p(b)." });
  Alcotest.(check bool) "op included" true
    (key <> Proto.request_key { base with Proto.op = Proto.Chase });
  Alcotest.(check bool) "budget included" true
    (key <> Proto.request_key { base with Proto.budget = Some 11 });
  Alcotest.(check bool) "quiet included" true
    (key <> Proto.request_key { base with Proto.quiet = true })

(* ------------------------------------------------------------------ *)
(* Proto: frames over a real socketpair                                *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_raw fd s =
  let b = Bytes.of_string s in
  ignore (Unix.write fd b 0 (Bytes.length b))

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      Proto.write_frame a "hello";
      Proto.write_frame a "";
      (match Proto.read_frame b with
      | `Frame s -> Alcotest.(check string) "frame" "hello" s
      | _ -> Alcotest.fail "expected frame");
      match Proto.read_frame b with
      | `Frame s -> Alcotest.(check string) "empty frame" "" s
      | _ -> Alcotest.fail "expected empty frame")

let test_frame_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Proto.read_frame b with
      | `Closed -> ()
      | _ -> Alcotest.fail "expected `Closed at a clean boundary")

let bad_frame raw =
  with_socketpair (fun a b ->
      write_raw a raw;
      Unix.close a;
      match Proto.read_frame b with
      | `Bad _ -> ()
      | `Closed -> Alcotest.fail "got `Closed, expected `Bad"
      | `Frame s -> Alcotest.failf "got frame %S, expected `Bad" s)

let test_frame_bad () =
  bad_frame "x\n";
  (* non-numeric header *)
  bad_frame "\n";
  (* empty header *)
  bad_frame "12";
  (* eof inside header *)
  bad_frame "10\nabc";
  (* eof inside payload *)
  bad_frame "99999999999999999999999\n";
  (* overflowing length *)
  bad_frame "123456789\n"
(* beyond max_len (read with default) — 123 MB declared *)

let test_frame_max_len () =
  with_socketpair (fun a b ->
      write_raw a "6\nabcdef";
      match Proto.read_frame ~max_len:5 b with
      | `Bad _ -> ()
      | _ -> Alcotest.fail "expected `Bad beyond max_len")

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_grants () =
  let p = Pool.create ~per_request_cap:50 ~min_grant:10 ~total:100 () in
  Alcotest.(check (option int)) "capped" (Some 50) (Pool.try_acquire p ~want:80);
  Alcotest.(check (option int)) "rest" (Some 40) (Pool.try_acquire p ~want:40);
  (* 10 left; below nothing, above min_grant: partial grant *)
  Alcotest.(check (option int)) "partial" (Some 10) (Pool.try_acquire p ~want:40);
  Alcotest.(check (option int)) "empty" None (Pool.try_acquire p ~want:40);
  Pool.release p 50;
  Alcotest.(check int) "released" 50 (Pool.available p)

let test_pool_deadline () =
  let p = Pool.create ~min_grant:10 ~total:10 () in
  Alcotest.(check (option int)) "drain" (Some 10) (Pool.try_acquire p ~want:10);
  let t0 = Unix.gettimeofday () in
  let r = Pool.acquire p ~want:10 ~deadline:(t0 +. 0.05) () in
  Alcotest.(check (option int)) "deadline" None r;
  Alcotest.(check bool) "waited" true (Unix.gettimeofday () -. t0 >= 0.04)

let test_pool_backpressure () =
  let p = Pool.create ~min_grant:10 ~total:10 () in
  Alcotest.(check (option int)) "drain" (Some 10) (Pool.try_acquire p ~want:10);
  let got = ref None in
  let th =
    Thread.create
      (fun () -> got := Pool.acquire p ~want:10 ~deadline:(Unix.gettimeofday () +. 5.) ())
      ()
  in
  Thread.delay 0.02;
  Pool.release p 10;
  Thread.join th;
  Alcotest.(check (option int)) "woke with credits" (Some 10) !got

(* ------------------------------------------------------------------ *)
(* Cache: single-flight                                                *)

let result_ n =
  { Proto.exit_code = 0; stdout = Fmt.str "r%d" n; stderr = ""; cached = false }

let test_cache_hit () =
  let c = Cache.create () in
  (match Cache.take c "k" with
  | Cache.Lead -> Cache.publish c "k" (Some (result_ 1)) ~retain:true
  | Cache.Hit _ -> Alcotest.fail "fresh cache cannot hit");
  match Cache.take c "k" with
  | Cache.Hit r ->
    Alcotest.(check string) "bytes" "r1" r.Proto.stdout;
    Alcotest.(check bool) "flagged cached" true r.Proto.cached
  | Cache.Lead -> Alcotest.fail "expected a hit"

let test_cache_no_retain () =
  let c = Cache.create () in
  (match Cache.take c "k" with
  | Cache.Lead -> Cache.publish c "k" (Some (result_ 1)) ~retain:false
  | Cache.Hit _ -> Alcotest.fail "fresh cache cannot hit");
  match Cache.take c "k" with
  | Cache.Lead -> Cache.abort c "k"
  | Cache.Hit _ -> Alcotest.fail "unretained result must not be served"

let test_cache_single_flight () =
  let c = Cache.create () in
  let executions = ref 0 in
  let mu = Mutex.create () in
  let run_one () =
    match Cache.take c "k" with
    | Cache.Hit r -> r.Proto.stdout
    | Cache.Lead ->
      Mutex.lock mu;
      incr executions;
      Mutex.unlock mu;
      Thread.delay 0.05;
      (* everyone else piles up on the flight meanwhile *)
      Cache.publish c "k" (Some (result_ 7)) ~retain:true;
      "r7"
  in
  let threads = List.init 8 (fun _ -> Thread.create run_one ()) in
  let results = List.map (fun th -> Thread.join th; ()) threads in
  ignore results;
  Alcotest.(check int) "one execution" 1 !executions;
  match Cache.take c "k" with
  | Cache.Hit r -> Alcotest.(check string) "shared bytes" "r7" r.Proto.stdout
  | Cache.Lead -> Alcotest.fail "expected the retained result"

let test_cache_abort_promotes () =
  let c = Cache.create () in
  (match Cache.take c "k" with
  | Cache.Lead -> ()
  | Cache.Hit _ -> Alcotest.fail "fresh cache cannot hit");
  let joined = ref None in
  let th =
    Thread.create
      (fun () ->
        match Cache.take c "k" with
        | Cache.Lead ->
          (* promoted after the leader aborted: finish the work *)
          Cache.publish c "k" (Some (result_ 2)) ~retain:true;
          joined := Some "lead"
        | Cache.Hit _ -> joined := Some "hit")
      ()
  in
  Thread.delay 0.02;
  Cache.abort c "k";
  Thread.join th;
  Alcotest.(check (option string)) "promoted to leader" (Some "lead") !joined

let test_cache_eviction () =
  let c = Cache.create ~capacity:2 () in
  List.iter
    (fun k ->
      match Cache.take c k with
      | Cache.Lead -> Cache.publish c k (Some (result_ 0)) ~retain:true
      | Cache.Hit _ -> ())
    [ "a"; "b"; "c" ];
  Alcotest.(check int) "capacity respected" 2 (Cache.retained c);
  (* FIFO: "a" went first *)
  match Cache.take c "a" with
  | Cache.Lead -> Cache.abort c "a"
  | Cache.Hit _ -> Alcotest.fail "oldest entry should have been evicted"

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let test_admission_shed () =
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let release = ref false in
  let block () =
    Mutex.lock mu;
    while not !release do
      Condition.wait cond mu
    done;
    Mutex.unlock mu
  in
  let a = Admission.create ~queue_cap:1 ~workers:1 () in
  (* one running, one queued, then the queue is full *)
  Alcotest.(check bool) "first accepted" true
    (Admission.submit a ~run:block ~abandon:ignore = `Accepted);
  Thread.delay 0.02;
  Alcotest.(check bool) "second accepted" true
    (Admission.submit a ~run:ignore ~abandon:ignore = `Accepted);
  (match Admission.submit a ~run:ignore ~abandon:ignore with
  | `Shed retry_after ->
    Alcotest.(check bool) "retry_after sane" true
      (retry_after >= 0.05 && retry_after <= 30.)
  | `Accepted -> Alcotest.fail "expected a shed");
  Alcotest.(check int) "shed counted" 1 (Admission.shed_count a);
  Mutex.lock mu;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock mu;
  Admission.stop a;
  Alcotest.(check int) "drained" 2 (Admission.completed a)

let test_admission_abandon () =
  let abandoned = ref 0 in
  let a = Admission.create ~queue_cap:8 ~workers:1 () in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let release = ref false in
  let block () =
    Mutex.lock mu;
    while not !release do
      Condition.wait cond mu
    done;
    Mutex.unlock mu
  in
  ignore (Admission.submit a ~run:block ~abandon:ignore);
  Thread.delay 0.02;
  (* the worker is pinned on [block]: these three can only queue *)
  for _ = 1 to 3 do
    ignore (Admission.submit a ~run:ignore ~abandon:(fun () -> incr abandoned))
  done;
  (* stop ~drain:false clears the queue (firing abandons) before
     joining the worker; release the worker so the join completes *)
  let stopper = Thread.create (fun () -> Admission.stop ~drain:false a) () in
  Thread.delay 0.05;
  Mutex.lock mu;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock mu;
  Thread.join stopper;
  Alcotest.(check int) "queued jobs abandoned" 3 !abandoned

(* ------------------------------------------------------------------ *)
(* Spool                                                               *)

let test_spool () =
  let dir = tmp_name ".spool" in
  let s = Spool.create ~dir in
  Spool.put_request s ~key:"k1" "req1";
  Spool.put_request s ~key:"k2" "req2";
  Spool.put_response s ~key:"k2" "resp2";
  (* stale tmp litter from a simulated kill mid-write *)
  let oc = open_out (Filename.concat dir "k3.req.tmp") in
  output_string oc "torn";
  close_out oc;
  Alcotest.(check (list string)) "pending = acknowledged - answered"
    [ "k1" ] (Spool.pending s);
  Alcotest.(check (option string)) "roundtrip" (Some "req1")
    (Spool.get_request s ~key:"k1");
  Alcotest.(check (option string)) "response" (Some "resp2")
    (Spool.get_response s ~key:"k2");
  Spool.remove s ~key:"k1";
  Spool.remove s ~key:"k2";
  Alcotest.(check (list string)) "removed" [] (Spool.pending s)

(* ------------------------------------------------------------------ *)
(* End-to-end: an in-process daemon on a real socket                   *)

let program = "tc: e(X, Y), e(Y, Z) -> e(X, Z).\ne(a,b). e(b,c). e(c,d).\n"
let rules_only = "tc: e(X, Y), e(Y, Z) -> e(X, Z)."

(* What the CLIs would print: the same Driver call the server makes. *)
let driver_bytes op ~budget ~src ~quiet =
  let out = Buffer.create 256 and err = Buffer.create 256 in
  let fout = Format.formatter_of_buffer out
  and ferr = Format.formatter_of_buffer err in
  let code =
    match op with
    | Proto.Chase ->
      Driver.chase
        (Driver.chase_opts ~budget ~max_atoms:(4 * budget) ~quiet ())
        ~file:"t.chase" ~src ~out:fout ~err:ferr
    | Proto.Decide ->
      Driver.decide
        (Driver.decide_opts ~budget ())
        ~file:"t.chase" ~src ~out:fout ~err:ferr
    | Proto.Lint ->
      Driver.lint_one
        (Driver.lint_opts ~budget ())
        ~file:"t.chase" ~src ~out:fout ~err:ferr
    | _ -> Alcotest.fail "unsupported op in driver_bytes"
  in
  Format.pp_print_flush fout ();
  Format.pp_print_flush ferr ();
  (code, Buffer.contents out, Buffer.contents err)

let with_server ?(workers = 2) ?(queue_cap = 8) ?spool_dir ?metrics
    ?(faults = []) f =
  let socket = tmp_name ".sock" in
  let cfg =
    Server.config ~workers ~queue_cap ?spool_dir ?metrics ~faults
      ~default_timeout:20. ~read_timeout:5. socket
  in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.wait server)
    (fun () -> f server socket)

let call_ok socket req =
  match Client.call_retry ~attempts:5 ~base_delay:0.02 ~socket req with
  | Ok (Proto.Ok_response r) -> r
  | Ok resp -> Alcotest.failf "unexpected response: %a" Proto.pp_response resp
  | Error failure -> Alcotest.failf "call failed: %a" Client.pp_failure failure

let test_server_ping () =
  with_server (fun _ socket ->
      let r = call_ok socket (Proto.request Proto.Ping) in
      (* one JSON line identifying the server, not a bare ack *)
      let module Jsonv = Chase_obs.Jsonv in
      let v =
        match Jsonv.of_string (String.trim r.Proto.stdout) with
        | Ok v -> v
        | Error m -> Alcotest.failf "ping is not JSON: %s" m
      in
      Alcotest.(check (option bool)) "pong" (Some true)
        (Option.bind (Jsonv.member "pong" v) (function
          | Jsonv.Bool b -> Some b
          | _ -> None));
      List.iter
        (fun field ->
          if Jsonv.member field v = None then
            Alcotest.failf "ping lacks %S" field)
        [ "role"; "build"; "uptime_s"; "pid"; "socket" ];
      Alcotest.(check int) "exit" 0 r.Proto.exit_code)

let test_server_telemetry () =
  with_server (fun _ socket ->
      (* serve one request first so the registry has live counters *)
      ignore
        (call_ok socket
           (Proto.request ~file:"t.chase" ~program ~budget:10_000 Proto.Chase));
      let module Jsonv = Chase_obs.Jsonv in
      (* default rendering: one JSON document *)
      let r = call_ok socket (Proto.request Proto.Telemetry) in
      let v =
        match Jsonv.of_string (String.trim r.Proto.stdout) with
        | Ok v -> v
        | Error m -> Alcotest.failf "telemetry is not JSON: %s" m
      in
      let str k = Option.bind (Jsonv.member k v) Jsonv.to_string_opt in
      Alcotest.(check (option string)) "schema" (Some "chase-telemetry/1")
        (str "schema");
      Alcotest.(check (option string)) "role" (Some "primary") (str "role");
      (match Jsonv.member "counters" v with
      | Some (Jsonv.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "telemetry has no counters");
      (* variant "prom": Prometheus text exposition of the same registry *)
      let p =
        call_ok socket (Proto.request ~variant:"prom" Proto.Telemetry)
      in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (Fmt.str "prom mentions %s" needle) true
            (let n = String.length needle in
             let hay = p.Proto.stdout in
             let rec go i =
               i + n <= String.length hay
               && (String.sub hay i n = needle || go (i + 1))
             in
             go 0))
        [
          "# TYPE chase_build_info gauge";
          "chase_uptime_seconds";
          "chase_svc_requests";
        ])

(* One formatter under every progress surface: the machine frame is
   derived from the same [Watchdog.fields] list the human line prints,
   so the two cannot drift field-by-field. *)
let test_progress_field_parity () =
  let s =
    {
      Chase_engine.Watchdog.step = 1536;
      elapsed = 2.25;
      steps_per_sec = 682.7;
      facts = 4096;
      queue_length = 17;
      nulls = 96;
      max_depth = 5;
      null_rate = 0.0625;
    }
  in
  let fields = Chase_engine.Watchdog.fields s in
  let f name = List.assoc name fields in
  let p = Proto.progress_of_snapshot s in
  Alcotest.(check int) "step" (int_of_float (f "step")) p.Proto.step;
  Alcotest.(check int) "atoms" (int_of_float (f "facts")) p.Proto.atoms;
  Alcotest.(check int) "nulls" (int_of_float (f "nulls")) p.Proto.nulls;
  Alcotest.(check (float 0.)) "elapsed" (f "elapsed") p.Proto.elapsed;
  let human = Fmt.str "%a" Chase_engine.Watchdog.pp_snapshot s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "human line shows %s" needle) true
        (let n = String.length needle in
         let rec go i =
           i + n <= String.length human
           && (String.sub human i n = needle || go (i + 1))
         in
         go 0))
    [ "step 1536"; "facts 4096"; "queue 17"; "nulls 96"; "depth 5" ]

let test_server_parity () =
  with_server (fun _ socket ->
      List.iter
        (fun (op, src, quiet) ->
          let budget = 10_000 in
          let code, out, err = driver_bytes op ~budget ~src ~quiet in
          let r =
            call_ok socket
              (Proto.request ~file:"t.chase" ~program:src ~budget ~quiet op)
          in
          let name = Proto.op_to_string op in
          Alcotest.(check int) (name ^ ": exit") code r.Proto.exit_code;
          Alcotest.(check string) (name ^ ": stdout") out r.Proto.stdout;
          Alcotest.(check string) (name ^ ": stderr") err r.Proto.stderr)
        [
          (Proto.Chase, program, false);
          (Proto.Chase, program, true);
          (Proto.Decide, rules_only, false);
          (Proto.Lint, program, false);
          (Proto.Chase, "nonsense", false);
          (* parse error: exit 1, message on stderr *)
        ])

let test_server_query () =
  with_server (fun _ socket ->
      let r =
        call_ok socket
          (Proto.request ~file:"t.chase" ~program ~budget:10_000
             ~query:"e(X, Y), e(Y, Z) -> ans(X, Z)." Proto.Query)
      in
      Alcotest.(check int) "exit" 0 r.Proto.exit_code;
      Alcotest.(check string) "certain answers"
        "ans(a, c).\nans(a, d).\nans(b, d).\n" r.Proto.stdout)

let test_server_cache () =
  with_server (fun _ socket ->
      let req =
        Proto.request ~file:"t.chase" ~program ~budget:10_000 Proto.Chase
      in
      let r1 = call_ok socket req in
      Alcotest.(check bool) "first is fresh" false r1.Proto.cached;
      let r2 = call_ok socket { req with Proto.id = "2" } in
      Alcotest.(check bool) "second is cached" true r2.Proto.cached;
      Alcotest.(check string) "identical bytes" r1.Proto.stdout r2.Proto.stdout)

let test_server_bad_frame () =
  with_server (fun _ socket ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_raw fd "not a frame\n";
      (match Proto.read_frame fd with
      | `Frame payload -> (
        match Proto.decode_response payload with
        | Ok (_, Proto.Bad_frame _) -> ()
        | other ->
          Alcotest.failf "expected bad-frame, got %a"
            Fmt.(result ~ok:(pair string Proto.pp_response) ~error:string)
            other)
      | _ -> Alcotest.fail "expected a bad-frame response");
      (* the server must then drop the desynchronized connection *)
      (match Proto.read_frame fd with
      | `Closed | `Bad _ -> ()
      | `Frame _ -> Alcotest.fail "connection should be closed");
      Unix.close fd)

let test_server_bad_request () =
  with_server (fun _ socket ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Proto.write_frame fd {|{"op":"frobnicate","id":"9"}|};
      (match Proto.read_frame fd with
      | `Frame payload -> (
        match Proto.decode_response payload with
        | Ok (_, Proto.Bad_request _) -> ()
        | _ -> Alcotest.fail "expected bad-request")
      | _ -> Alcotest.fail "expected a response frame");
      (* a bad request is not a framing error: the connection lives *)
      Proto.write_frame fd (Proto.encode_request (Proto.request Proto.Ping));
      (match Proto.read_frame fd with
      | `Frame payload -> (
        match Proto.decode_response payload with
        | Ok (_, Proto.Ok_response r) ->
          Alcotest.(check bool) "still serving" true
            (String.length r.Proto.stdout > 12
            && String.sub r.Proto.stdout 0 13 = {|{"pong":true,|})
        | _ -> Alcotest.fail "expected pong")
      | _ -> Alcotest.fail "expected a pong frame");
      Unix.close fd)

let test_server_overload () =
  (* one worker, queue of one: concurrent distinct requests must shed
     with a structured retry_after, never hang or drop silently *)
  with_server ~workers:1 ~queue_cap:1 (fun _ socket ->
      let divergent i =
        Fmt.str "g%d: e(X, Y) -> e(Y, W).\ne(a,b).\n" i
      in
      let outcomes = Array.make 6 `None in
      let threads =
        List.init 6 (fun i ->
            Thread.create
              (fun () ->
                let req =
                  Proto.request ~id:(string_of_int i) ~file:"t.chase"
                    ~program:(divergent i) ~budget:60_000 ~quiet:true
                    Proto.Chase
                in
                match Client.connect ~socket () with
                | Error _ -> ()
                | Ok conn ->
                  (match Client.call conn req with
                  | Ok (Proto.Ok_response _) -> outcomes.(i) <- `Ok
                  | Ok (Proto.Overloaded ra) -> outcomes.(i) <- `Shed ra
                  | _ -> ());
                  Client.close conn)
              ())
      in
      List.iter Thread.join threads;
      let shed =
        Array.to_list outcomes
        |> List.filter (function `Shed _ -> true | _ -> false)
        |> List.length
      in
      Alcotest.(check bool) "at least one structured shed" true (shed >= 1);
      Array.iter
        (function
          | `Shed ra ->
            Alcotest.(check bool) "retry_after positive" true (ra > 0.)
          | _ -> ())
        outcomes)

let test_server_boot_recovery () =
  let spool_dir = tmp_name ".spool" in
  let socket = tmp_name ".sock" in
  (* acknowledge a durable request on disk with no daemon running at
     all — as a kill between fsync and run would leave things *)
  let s = Spool.create ~dir:spool_dir in
  let req =
    Proto.request ~file:"t.chase" ~program ~budget:10_000 ~quiet:true
      ~durable:true Proto.Chase
  in
  let key = Proto.request_key req in
  Spool.put_request s ~key (Proto.encode_request req);
  Alcotest.(check (list string)) "acknowledged, unanswered" [ key ]
    (Spool.pending s);
  (* boot: recovery must complete it without any client *)
  let server = Server.start (Server.config ~spool_dir socket) in
  let rec await n =
    if Spool.has_response s ~key then ()
    else if n = 0 then Alcotest.fail "boot recovery never answered"
    else begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 100;
  (* and a client retry of the same request is served the spooled bytes *)
  let r = call_ok socket req in
  Alcotest.(check bool) "served from spool" true r.Proto.cached;
  let code, out, err = driver_bytes Proto.Chase ~budget:10_000 ~src:program ~quiet:true in
  Alcotest.(check int) "exit parity" code r.Proto.exit_code;
  Alcotest.(check string) "stdout parity" out r.Proto.stdout;
  Alcotest.(check string) "stderr parity" err r.Proto.stderr;
  Server.stop server;
  Server.wait server

let test_client_gives_up () =
  let socket = tmp_name ".sock" in
  (* nobody listening: the retry loop must fail structurally, fast *)
  let retries = ref 0 in
  match
    Client.call_retry ~attempts:3 ~base_delay:0.005
      ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retries)
      ~socket (Proto.request Proto.Ping)
  with
  | Error (Client.Gave_up _) ->
    Alcotest.(check int) "every attempt retried" 3 !retries
  | Ok _ | Error (Client.Rejected _) ->
    Alcotest.fail "expected Gave_up against a dead socket"

let test_server_stats_op () =
  with_server (fun server socket ->
      ignore (call_ok socket (Proto.request Proto.Ping));
      let r = call_ok socket (Proto.request Proto.Stats) in
      match Jsonv.of_string r.Proto.stdout with
      | Error msg -> Alcotest.fail msg
      | Ok v ->
        Alcotest.(check bool) "accepts present" true
          (Jsonv.member "accepts" v <> None);
        Alcotest.(check bool) "counters match API" true
          (List.mem_assoc "responses" (Server.stats server)))

let suite =
  [
    Alcotest.test_case "proto: request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "proto: request defaults" `Quick test_request_defaults;
    Alcotest.test_case "proto: request errors" `Quick test_request_errors;
    Alcotest.test_case "proto: response roundtrip" `Quick test_response_roundtrip;
    Alcotest.test_case "proto: idempotency key" `Quick test_request_key;
    Alcotest.test_case "proto: frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "proto: clean close" `Quick test_frame_closed;
    Alcotest.test_case "proto: bad frames" `Quick test_frame_bad;
    Alcotest.test_case "proto: frame size limit" `Quick test_frame_max_len;
    Alcotest.test_case "pool: grants and caps" `Quick test_pool_grants;
    Alcotest.test_case "pool: deadline" `Quick test_pool_deadline;
    Alcotest.test_case "pool: backpressure wakes" `Quick test_pool_backpressure;
    Alcotest.test_case "cache: hit" `Quick test_cache_hit;
    Alcotest.test_case "cache: no retain" `Quick test_cache_no_retain;
    Alcotest.test_case "cache: single flight" `Quick test_cache_single_flight;
    Alcotest.test_case "cache: abort promotes" `Quick test_cache_abort_promotes;
    Alcotest.test_case "cache: FIFO eviction" `Quick test_cache_eviction;
    Alcotest.test_case "admission: shed with retry_after" `Quick
      test_admission_shed;
    Alcotest.test_case "admission: abandon on kill" `Quick
      test_admission_abandon;
    Alcotest.test_case "spool: pending and atomicity" `Quick test_spool;
    Alcotest.test_case "server: ping" `Quick test_server_ping;
    Alcotest.test_case "server: telemetry op (JSON + prom)" `Quick
      test_server_telemetry;
    Alcotest.test_case "proto: progress/watchdog field parity" `Quick
      test_progress_field_parity;
    Alcotest.test_case "server: CLI byte parity" `Quick test_server_parity;
    Alcotest.test_case "server: query" `Quick test_server_query;
    Alcotest.test_case "server: cache + single flight" `Quick
      test_server_cache;
    Alcotest.test_case "server: bad frame drops connection" `Quick
      test_server_bad_frame;
    Alcotest.test_case "server: bad request keeps connection" `Quick
      test_server_bad_request;
    Alcotest.test_case "server: overload sheds structurally" `Quick
      test_server_overload;
    Alcotest.test_case "server: boot recovery" `Quick
      test_server_boot_recovery;
    Alcotest.test_case "client: gives up structurally" `Quick
      test_client_gives_up;
    Alcotest.test_case "server: stats op" `Quick test_server_stats_op;
  ]
