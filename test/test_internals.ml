(** White-box tests of the analysis internals: the pattern-transition
    system of the linear procedure, variant parsing, verdicts, and shared
    utilities. *)

open Chase
open Test_util

(* ---------------- pattern transitions ---------------- *)

let pattern_of_null_atom () =
  Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 2 ])

let test_transitions_example2 () =
  (* p(X,Y) → ∃Z p(Y,Z) from the all-null pattern *)
  let rules = Families.example2 in
  let trs = Critical_linear.transitions_of rules (pattern_of_null_atom ()) in
  Alcotest.(check int) "one transition" 1 (List.length trs);
  let tr = List.hd trs in
  Alcotest.(check bool) "creates a null" true tr.Critical_linear.creates_null;
  (* frontier Y sits in class 1 of the parent *)
  Alcotest.(check (list int)) "frontier classes" [ 1 ]
    tr.Critical_linear.frontier_classes;
  (* the child is p(#0, #1): Y's class then the fresh null *)
  Alcotest.(check int) "child arity" 2 (Pattern.arity tr.Critical_linear.child);
  (match tr.Critical_linear.sources with
  | [| Critical_linear.From_parent 1; Critical_linear.Fresh |] -> ()
  | _ -> Alcotest.fail "unexpected sources")

let test_transitions_respect_repeated_vars () =
  (* p(X,X) → … applies to the diagonal pattern only *)
  let rules = Families.thm2_counterexample in
  let diag = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 1 ]) in
  let off = pattern_of_null_atom () in
  Alcotest.(check int) "diagonal matches" 1
    (List.length (Critical_linear.transitions_of rules diag));
  Alcotest.(check int) "off-diagonal does not" 0
    (List.length (Critical_linear.transitions_of rules off))

let test_transitions_constant_body () =
  let rules = parse "p(c, X) -> q(X)." in
  let matching = Pattern.of_atom (Atom.of_list "p" [ Term.Const "c"; Term.Null 1 ]) in
  let wrong = Pattern.of_atom (Atom.of_list "p" [ Term.Const "d"; Term.Null 1 ]) in
  Alcotest.(check int) "constant matches" 1
    (List.length (Critical_linear.transitions_of rules matching));
  Alcotest.(check int) "other constant does not" 0
    (List.length (Critical_linear.transitions_of rules wrong))

let test_child_pattern_merges_classes () =
  (* head repeats a frontier variable: both head positions share a class *)
  let rules = parse "p(X, Y) -> q(X, X, Z)." in
  let trs = Critical_linear.transitions_of rules (pattern_of_null_atom ()) in
  let child = (List.hd trs).Critical_linear.child in
  Alcotest.(check int) "two classes in q/3" 2 (Pattern.class_count child);
  Alcotest.(check int) "positions 0 and 1 share" (Pattern.class_of child 0)
    (Pattern.class_of child 1)

let test_child_pattern_constant_label () =
  (* a frontier variable bound to a constant class yields a constant
     label in the child *)
  let rules = parse "p(X, Y) -> q(Y, Z)." in
  let parent = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Const "*" ]) in
  let trs = Critical_linear.transitions_of rules parent in
  let child = (List.hd trs).Critical_linear.child in
  (match Pattern.label_of child (Pattern.class_of child 0) with
  | Pattern.Lconst s -> Alcotest.(check string) "constant flows through" "*" s
  | Pattern.Lnull -> Alcotest.fail "expected a constant label")

let test_reachable_patterns_example2 () =
  let rules = Families.example2 in
  let reach =
    Critical_linear.reachable_patterns ~constants:[ Critical.star ] rules
  in
  (* p(✶,✶), p(✶,#0), p(#0,#1) — the diagonal all-null pattern is NOT
     reachable (fresh nulls are always new) *)
  Alcotest.(check int) "three patterns" 3 (Pattern.Set.cardinal reach);
  let diag = Pattern.of_atom (Atom.of_list "p" [ Term.Null 1; Term.Null 1 ]) in
  Alcotest.(check bool) "no diagonal nulls" false (Pattern.Set.mem diag reach)

let test_confirm_rejects_fake_pump () =
  (* the identity-ish cycle on the separator's stable pattern produces
     the same frontier key every lap: confirm must reject it for so *)
  let rules = Families.separator in
  let parent = Pattern.of_atom (Atom.of_list "p" [ Term.Const "*"; Term.Null 1 ]) in
  let trs = Critical_linear.transitions_of rules parent in
  Alcotest.(check int) "one transition" 1 (List.length trs);
  Alcotest.(check bool) "so-pump rejected" false
    (Critical_linear.confirm ~semi:true rules ~start:parent ~cycle:trs ~laps:4);
  Alcotest.(check bool) "o-pump confirmed" true
    (Critical_linear.confirm ~semi:false rules ~start:parent ~cycle:trs ~laps:4)

(* ---------------- guarded internals ---------------- *)

let test_guarded_pump_structure () =
  let rules = Families.guarded_divergent ~arity:2 in
  let crit = Critical.of_rules rules in
  let config =
    { Engine.variant = Variant.Semi_oblivious;
      limits = Limits.make ~max_triggers:500 ~max_atoms:2000 () }
  in
  let result = Engine.run ~config rules (Instance.to_list crit) in
  Alcotest.(check bool) "budget hit" true
    (Engine.exhausted result);
  match Guarded.find_pump result with
  | None -> Alcotest.fail "expected a pump"
  | Some pump ->
    Alcotest.(check bool) "at least 3 occurrences" true
      (List.length pump.Guarded.occurrences >= 3);
    Alcotest.(check bool) "chain long enough" true (pump.Guarded.chain_length >= 3);
    (* the recurring facts all have the same predicate and pattern *)
    let patterns =
      List.map Pattern.of_atom pump.Guarded.occurrences
      |> List.sort_uniq Pattern.compare
    in
    Alcotest.(check int) "single recurring pattern" 1 (List.length patterns)

let test_guarded_no_pump_on_terminating () =
  let rules = Families.guarded_tower ~levels:3 in
  let crit = Critical.of_rules rules in
  let config =
    { Engine.variant = Variant.Semi_oblivious;
      limits = Limits.make ~max_triggers:10_000 ~max_atoms:40_000 () }
  in
  let result = Engine.run ~config rules (Instance.to_list crit) in
  Alcotest.(check bool) "terminated" true (result.Engine.status = Engine.Terminated);
  Alcotest.(check bool) "no pump on a closed run" true
    (Guarded.find_pump result = None)

(* ---------------- variants, verdicts, util ---------------- *)

let test_variant_parsing () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Variant.to_string v ^ " roundtrips")
        true
        (Variant.of_string (Variant.to_string v) = Some v))
    Variant.all;
  Alcotest.(check bool) "skolem alias" true
    (Variant.of_string "skolem" = Some Variant.Semi_oblivious);
  Alcotest.(check bool) "garbage rejected" true (Variant.of_string "frisky" = None)

let test_verdict_accessors () =
  let v = Verdict.diverges ~procedure:"test" ~evidence:"because" in
  Alcotest.(check bool) "diverging" true (Verdict.is_diverging v);
  Alcotest.(check bool) "not terminating" false (Verdict.is_terminating v);
  Alcotest.(check bool) "pp mentions procedure" true
    (let s = Verdict.to_string v in
     String.length s > 0
     &&
     let re_found = ref false in
     String.iteri
       (fun i _ ->
         if i + 4 <= String.length s && String.sub s i 4 = "test" then
           re_found := true)
       s;
     !re_found)

let test_subst_agree_on () =
  let module S = Chase_logic.Util.Sset in
  let s1 = Subst.of_list [ ("X", Term.Const "a"); ("Y", Term.Const "b") ] in
  let s2 = Subst.of_list [ ("X", Term.Const "a"); ("Y", Term.Const "c") ] in
  Alcotest.(check bool) "agree on X" true (Subst.agree_on (S.singleton "X") s1 s2);
  Alcotest.(check bool) "disagree on Y" false (Subst.agree_on (S.singleton "Y") s1 s2);
  Alcotest.(check bool) "unbound on both counts as agreement" true
    (Subst.agree_on (S.singleton "Z") s1 s2)

let test_schema_union () =
  let s1 = Schema.of_rules (parse "p(X) -> q(X).") in
  let s2 = Schema.of_rules (parse "q(X) -> r(X, Y).") in
  let u = Schema.union s1 s2 in
  Alcotest.(check int) "three predicates" 3 (Schema.cardinal u)

let suite =
  [
    Alcotest.test_case "transitions: example 2" `Quick test_transitions_example2;
    Alcotest.test_case "transitions: repeated variables" `Quick
      test_transitions_respect_repeated_vars;
    Alcotest.test_case "transitions: body constants" `Quick
      test_transitions_constant_body;
    Alcotest.test_case "child pattern merges classes" `Quick
      test_child_pattern_merges_classes;
    Alcotest.test_case "child pattern constant labels" `Quick
      test_child_pattern_constant_label;
    Alcotest.test_case "reachable patterns of example 2" `Quick
      test_reachable_patterns_example2;
    Alcotest.test_case "confirm rejects fake pumps" `Quick test_confirm_rejects_fake_pump;
    Alcotest.test_case "guarded pump structure" `Quick test_guarded_pump_structure;
    Alcotest.test_case "guarded: no pump on terminating" `Quick
      test_guarded_no_pump_on_terminating;
    Alcotest.test_case "variant parsing" `Quick test_variant_parsing;
    Alcotest.test_case "verdict accessors" `Quick test_verdict_accessors;
    Alcotest.test_case "subst agree_on" `Quick test_subst_agree_on;
    Alcotest.test_case "schema union" `Quick test_schema_union;
  ]
