(** Fault-injection tests for the resource-governed runtime: scheduled
    deadline expiry, cancellation and cap trips must all flow through the
    engine's real degradation paths and leave a well-formed partial
    result whose facts replay from their derivations. *)

open Chase
open Test_util

let zoo () = Parser.parse_rules_exn (read_data "divergent_zoo.chase")
let zoo_db () = parse_facts "p(a, a). q(a, a). r(a, a). marked(a)."

(* Plenty of headroom in the base limits: only the injection may stop the
   run before the safety-net trigger budget. *)
let base_limits () =
  Limits.make ~max_triggers:5_000 ~max_atoms:50_000 ~max_nulls:50_000
    ~max_depth:10_000 ~timeout:3_600. ()

let run_with_faults plan =
  let faults = Faults.create plan in
  let limits = Faults.arm faults (base_limits ()) in
  let config = { Engine.variant = Variant.Oblivious; limits } in
  let result = Engine.run ~config (zoo ()) (zoo_db ()) in
  (match Engine.check_provenance result ~db:(zoo_db ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("unsound partial result: " ^ msg));
  (result, exhaustion_exn result, Faults.fired faults)

let test_injected_deadline () =
  let _, reason, fired = run_with_faults [ (40, Faults.Expire_deadline) ] in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Deadline 3_600. -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check int) "stopped at the injection step" 40
    reason.Limits.Exhaustion.steps;
  match fired with
  | [ (40, Faults.Expire_deadline) ] -> ()
  | _ -> Alcotest.fail "injection log does not record the expiry"

let test_injected_cancellation () =
  let _, reason, fired = run_with_faults [ (25, Faults.Cancel "injected") ] in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Cancelled (Some "injected") -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check int) "stopped at the injection step" 25
    reason.Limits.Exhaustion.steps;
  Alcotest.(check int) "one injection fired" 1 (List.length fired)

let test_injected_atom_cap () =
  let result, reason, _ = run_with_faults [ (30, Faults.Trip_atom_cap) ] in
  match reason.Limits.Exhaustion.breach with
  | Limits.Atom_budget n ->
    Alcotest.(check int) "cap collapsed to the cardinality at the trip" n
      (Instance.cardinal result.Engine.instance)
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_injected_trigger_cap () =
  let _, reason, _ = run_with_faults [ (20, Faults.Trip_trigger_cap) ] in
  match reason.Limits.Exhaustion.breach with
  | Limits.Trigger_budget 20 ->
    Alcotest.(check int) "no step beyond the trip" 20
      reason.Limits.Exhaustion.steps
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_injected_null_and_depth_caps () =
  let _, r1, _ = run_with_faults [ (15, Faults.Trip_null_cap) ] in
  (match r1.Limits.Exhaustion.breach with
  | Limits.Null_budget _ -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  let _, r2, _ = run_with_faults [ (15, Faults.Trip_depth_cap) ] in
  match r2.Limits.Exhaustion.breach with
  | Limits.Depth_budget _ -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_first_injection_wins () =
  (* the cancellation at step 10 lands before the deadline at step 50 *)
  let _, reason, fired =
    run_with_faults
      [ (50, Faults.Expire_deadline); (10, Faults.Cancel "early") ]
  in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Cancelled (Some "early") -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check int) "only the early injection fired" 1 (List.length fired)

(* the property behind the harness: EVERY degraded path yields a
   well-formed partial result whose facts are all derivable *)
let degraded_paths_sound =
  let injections =
    [ Faults.Expire_deadline; Faults.Cancel "fuzz"; Faults.Trip_trigger_cap;
      Faults.Trip_atom_cap; Faults.Trip_null_cap; Faults.Trip_depth_cap ]
  in
  let gen = QCheck.Gen.(pair (int_range 0 120) (oneofl injections)) in
  let print (step, inj) = Fmt.str "(%d, %a)" step Faults.pp_injection inj in
  qcheck ~count:120 "every injected fault degrades to a sound prefix"
    (QCheck.make ~print gen)
    (fun (step, injection) ->
      let result, reason, fired = run_with_faults [ (step, injection) ] in
      Engine.exhausted result
      && List.length fired = 1
      && reason.Limits.Exhaustion.steps <= step
         + 1 (* the breach lands at the check for the injection step *)
      && Instance.cardinal result.Engine.instance
         >= List.length (zoo_db ()))

let suite =
  [
    Alcotest.test_case "injected deadline expiry" `Quick test_injected_deadline;
    Alcotest.test_case "injected cancellation" `Quick
      test_injected_cancellation;
    Alcotest.test_case "injected atom-cap trip" `Quick test_injected_atom_cap;
    Alcotest.test_case "injected trigger-cap trip" `Quick
      test_injected_trigger_cap;
    Alcotest.test_case "injected null/depth-cap trips" `Quick
      test_injected_null_and_depth_caps;
    Alcotest.test_case "earliest injection wins" `Quick
      test_first_injection_wins;
    degraded_paths_sound;
  ]
