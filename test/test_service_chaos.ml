(** Chaos soak for the chase service, in process: repeated simulated
    SIGKILLs of the daemon with durable requests in flight, a malformed
    / dropped-connection frame storm running {e concurrently} with
    hundreds of client requests against a deliberately undersized
    server, armed service faults (torn and dribbled responses, a dying
    accept loop), and a final graceful life whose metrics file must be
    valid JSONL.

    The acceptance numbers are asserted, not aspirational: ≥ 10 kills,
    ≥ 100 malformed frames, ≥ 200 concurrent requests, zero lost
    acknowledged durable requests, and every completed response
    byte-identical to what the single-shot CLIs print. *)

open Chase

let kill_cycles = 12
let attack_kinds = 6
let attack_rounds = 20 (* 120 malformed / dropped frames *)
let storm_threads = 24
let storm_requests_each = 10 (* 240 concurrent requests *)

(* Tallies, guarded by one lock: threads everywhere. *)
let mu = Mutex.create ()
let kills = ref 0
let malformed = ref 0
let requests_sent = ref 0
let sheds_seen = ref 0
let parity_checked = ref 0

let bump r n =
  Mutex.lock mu;
  r := !r + n;
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* Corpus: deterministic programs with expected bytes precomputed via
   the same Driver the CLIs run.                                       *)

let cycle_graph n =
  let b = Buffer.create 256 in
  Buffer.add_string b "tc: e(X, Y), e(Y, Z) -> e(X, Z).\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Fmt.str "e(n%d, n%d).\n" i ((i + 1) mod n))
  done;
  Buffer.contents b

let path_program = "tc: e(X, Y), e(Y, Z) -> e(X, Z).\ne(a,b). e(b,c). e(c,d).\n"
let guarded_rules = "tc: e(X, Y), e(Y, Z) -> e(X, Z)."

(* The kill-drill workload: big enough (18³ = 5832 triggers, ~100 ms)
   that a kill 5–25 ms in lands mid-run, yet terminating within budget —
   exhaustion diagnostics embed wall-clock time and so can never be
   byte-reproducible. *)
let drill_budget = 8_000
let drill_program = cycle_graph 18

type expected = { req : Proto.request; code : int; out : string; err : string }

let expect op ~program ~budget ~quiet ~durable =
  let code, out, err =
    Test_service.driver_bytes op ~budget ~src:program ~quiet
  in
  let req =
    Proto.request ~file:"t.chase" ~program ~budget ~quiet ~durable op
  in
  { req; code; out; err }

let check_parity name exp (r : Proto.result) =
  Alcotest.(check int) (name ^ ": exit") exp.code r.Proto.exit_code;
  Alcotest.(check string) (name ^ ": stdout") exp.out r.Proto.stdout;
  Alcotest.(check string) (name ^ ": stderr") exp.err r.Proto.stderr;
  bump parity_checked 1

(* built lazily so suite listing stays cheap *)
let corpus =
  lazy
    [
      expect Proto.Chase ~program:drill_program ~budget:drill_budget
        ~quiet:true ~durable:true;
      expect Proto.Chase ~program:path_program ~budget:10_000 ~quiet:true
        ~durable:true;
      expect Proto.Chase ~program:path_program ~budget:10_000 ~quiet:false
        ~durable:false;
      expect Proto.Decide ~program:guarded_rules ~budget:10_000 ~quiet:false
        ~durable:false;
      expect Proto.Lint ~program:path_program ~budget:10_000 ~quiet:false
        ~durable:false;
    ]

(* ------------------------------------------------------------------ *)
(* Phase A: kill/restart drill with durable requests in flight          *)

let drill ~socket ~spool_dir =
  let corpus = Lazy.force corpus in
  let n = List.length corpus in
  for cycle = 0 to kill_cycles - 1 do
    let server =
      Server.start (Server.config ~workers:3 ~spool_dir socket)
    in
    let threads =
      List.init 4 (fun i ->
          Thread.create
            (fun () ->
              let exp = List.nth corpus ((cycle + i) mod n) in
              bump requests_sent 1;
              (* the kill races this call: losing is expected, losing an
                 *acknowledged* durable request is not — phase B audits *)
              ignore
                (Client.call_retry ~attempts:2 ~base_delay:0.01 ~socket
                   exp.req))
            ())
    in
    (* vary where the kill lands: connect, spool, mid-run, post-reply *)
    Thread.delay (0.004 +. (0.005 *. float_of_int (cycle mod 5)));
    Server.kill server;
    Server.wait server;
    bump kills 1;
    List.iter Thread.join threads
  done

(* Phase B: boot recovery must finish every acknowledged request, and
   replays must be byte-identical to single-shot runs.                 *)

let recover_and_audit ~socket ~spool_dir ~metrics =
  let spool = Spool.create ~dir:spool_dir in
  let server =
    Server.start (Server.config ~workers:3 ~spool_dir ~metrics socket)
  in
  let rec drain n =
    match Spool.pending spool with
    | [] -> ()
    | pending ->
      if n = 0 then
        Alcotest.failf "lost acknowledged requests: %s"
          (String.concat ", " pending)
      else begin
        Thread.delay 0.05;
        drain (n - 1)
      end
  in
  drain 200;
  (* every durable program in the corpus: ask again, compare bytes *)
  List.iter
    (fun exp ->
      if exp.req.Proto.durable then begin
        bump requests_sent 1;
        match Client.call_retry ~attempts:5 ~socket exp.req with
        | Ok (Proto.Ok_response r) -> check_parity "replay" exp r
        | Ok resp ->
          Alcotest.failf "replay rejected: %a" Proto.pp_response resp
        | Error f -> Alcotest.failf "replay failed: %a" Client.pp_failure f
      end)
    (Lazy.force corpus);
  (* graceful life: stop must flush final metric summaries *)
  Server.stop server;
  Server.wait server;
  let ic = open_in metrics in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Jsonv.of_string line with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "bad metrics line %d: %s" !lines msg
     done
   with End_of_file -> close_in ic);
  Alcotest.(check bool) "metrics non-empty" true (!lines > 0)

(* ------------------------------------------------------------------ *)
(* Phase C: malformed-frame storm concurrent with a request storm       *)
(* against an undersized server — sheds must be structured.             *)

let write_raw fd s =
  let b = Bytes.of_string s in
  ignore (Unix.write fd b 0 (Bytes.length b))

let attack ~socket kind =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try
       Unix.connect fd (Unix.ADDR_UNIX socket);
       (match kind with
       | 0 -> write_raw fd "@@@@@\n" (* junk header *)
       | 1 -> () (* connect, say nothing, hang up *)
       | 2 -> write_raw fd "123456789\n" (* oversize declared length *)
       | 3 -> write_raw fd "20\nshort" (* EOF mid-payload *)
       | 4 -> Proto.write_frame fd {|{"op":|} (* framed garbage JSON *)
       | _ -> write_raw fd "99999999999999999999999\n" (* overflow *));
       (* read whatever diagnosis comes back (or the close), briefly *)
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5;
       ignore (Proto.read_frame fd)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    bump malformed 1

let storm ~socket =
  let corpus = Lazy.force corpus in
  let fast = List.filter (fun e -> not e.req.Proto.durable) corpus in
  let nfast = List.length fast in
  let attackers =
    List.init attack_kinds (fun kind ->
        Thread.create
          (fun () ->
            for _ = 1 to attack_rounds do
              attack ~socket kind
            done)
          ())
  in
  let requesters =
    List.init storm_threads (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to storm_requests_each do
              bump requests_sent 1;
              if i < storm_threads / 2 then begin
                (* cacheable corpus work: whatever completes must be
                   byte-perfect, shed or join-the-flight both fine *)
                let exp = List.nth fast ((i + j) mod nfast) in
                match Client.connect ~socket () with
                | Error _ -> Alcotest.fail "storm: connect refused"
                | Ok conn ->
                  (match Client.call conn exp.req with
                  | Ok (Proto.Ok_response r) -> check_parity "storm" exp r
                  | Ok (Proto.Overloaded ra) ->
                    Alcotest.(check bool) "retry_after > 0" true (ra > 0.);
                    bump sheds_seen 1
                  | Ok resp ->
                    Alcotest.failf "storm: unexpected %a" Proto.pp_response
                      resp
                  | Error msg -> Alcotest.failf "storm: transport: %s" msg);
                  Client.close conn
              end
              else begin
                (* unique slow work: defeats the cache, forces queueing *)
                let program =
                  Fmt.str "g%d_%d: e(X, Y) -> e(Y, W).\ne(a,b).\n" i j
                in
                let req =
                  Proto.request ~file:"t.chase" ~program ~budget:20_000
                    ~quiet:true Proto.Chase
                in
                match Client.connect ~socket () with
                | Error _ -> Alcotest.fail "storm: connect refused"
                | Ok conn ->
                  (match Client.call conn req with
                  | Ok (Proto.Ok_response r) ->
                    Alcotest.(check int) "divergent exhausts" 2
                      r.Proto.exit_code
                  | Ok (Proto.Overloaded ra) ->
                    Alcotest.(check bool) "retry_after > 0" true (ra > 0.);
                    bump sheds_seen 1
                  | Ok resp ->
                    Alcotest.failf "storm: unexpected %a" Proto.pp_response
                      resp
                  | Error msg -> Alcotest.failf "storm: transport: %s" msg);
                  Client.close conn
              end
            done)
          ())
  in
  List.iter Thread.join attackers;
  List.iter Thread.join requesters

let phase_storm () =
  let socket = Test_service.tmp_name ".sock" in
  let server =
    Server.start (Server.config ~workers:1 ~queue_cap:2 socket)
  in
  storm ~socket;
  (* the server survived 120 attacks: it must still answer *)
  (match Client.call_retry ~attempts:5 ~socket (Proto.request Proto.Ping) with
  | Ok (Proto.Ok_response r) ->
    Alcotest.(check bool) "alive after the storm" true
      (String.length r.Proto.stdout > 12
      && String.sub r.Proto.stdout 0 13 = {|{"pong":true,|})
  | _ -> Alcotest.fail "server died during the storm");
  (* attacker threads have joined (bytes written, sockets closed), but
     the server may still be mid-diagnosis on the last few connections:
     poll the stat to convergence before asserting *)
  let bad_frames () =
    try List.assoc "bad_frames" (Server.stats server) with Not_found -> 0
  in
  let need = (attack_kinds - 2) * attack_rounds in
  let rec settle n = if bad_frames () < need && n > 0 then (Thread.delay 0.05; settle (n - 1)) in
  settle 60;
  Alcotest.(check bool)
    (Fmt.str "server diagnosed bad frames (%d)" (bad_frames ()))
    true
    (bad_frames () >= need);
  Server.stop server;
  Server.wait server

(* ------------------------------------------------------------------ *)
(* Phase D: armed response faults — torn and dribbled responses must be
   absorbed by the client retry contract, bytes intact.                *)

let phase_response_faults () =
  let socket = Test_service.tmp_name ".sock" in
  let faults =
    (* every odd response is cut after 3 bytes; the 2nd and 6th are
       dribbled out 5 bytes at a time *)
    List.init 10 (fun i -> Faults.Drop_response_after ((2 * i) + 1, 3))
    @ [ Faults.Slow_response (2, 5); Faults.Slow_response (6, 5) ]
  in
  let server = Server.start (Server.config ~workers:2 ~faults socket) in
  let corpus = Lazy.force corpus in
  let fast = List.filter (fun e -> not e.req.Proto.durable) corpus in
  let torn = ref 0 in
  List.iteri
    (fun i exp ->
      bump requests_sent 1;
      match
        Client.call_retry ~attempts:8 ~base_delay:0.01 ~seed:i
          ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr torn)
          ~socket exp.req
      with
      | Ok (Proto.Ok_response r) -> check_parity "faulted" exp r
      | Ok resp -> Alcotest.failf "faulted: %a" Proto.pp_response resp
      | Error f -> Alcotest.failf "faulted: %a" Client.pp_failure f)
    (fast @ fast @ fast);
  (* the cut responses really happened and really were retried *)
  Alcotest.(check bool) (Fmt.str "saw torn responses (%d)" !torn) true
    (!torn >= 3);
  bump malformed !torn;
  Server.stop server;
  Server.wait server

(* Phase E: the accept loop dies mid-life — already-accepted clients
   finish, and shutdown must not wedge on the dead loop.               *)

let phase_accept_death () =
  let socket = Test_service.tmp_name ".sock" in
  let server =
    Server.start
      (Server.config ~faults:[ Faults.Kill_accept_after 3 ] socket)
  in
  for _ = 1 to 2 do
    bump requests_sent 1;
    match Client.call_retry ~attempts:3 ~socket (Proto.request Proto.Ping) with
    | Ok (Proto.Ok_response r) ->
      Alcotest.(check bool) "served before death" true
        (String.length r.Proto.stdout > 12
        && String.sub r.Proto.stdout 0 13 = {|{"pong":true,|})
    | _ -> Alcotest.fail "ping before accept death"
  done;
  (* the third connection is the sacrifice: the accept loop dies with
     it, and from then on clients must fail structurally, not hang *)
  bump requests_sent 1;
  (match
     Client.call_retry ~attempts:2 ~base_delay:0.01 ~socket
       (Proto.request Proto.Ping)
   with
  | Error (Client.Gave_up _) -> bump malformed 1 (* dropped connection *)
  | Ok _ -> Alcotest.fail "accept loop should be dead"
  | Error (Client.Rejected _) -> Alcotest.fail "expected a transport failure");
  (* accept loop is dead now; stop must still converge *)
  let stopped = ref false in
  let t =
    Thread.create
      (fun () ->
        Server.stop server;
        Server.wait server;
        stopped := true)
      ()
  in
  Thread.join t;
  Alcotest.(check bool) "shutdown survives a dead accept loop" true !stopped;
  bump kills 1

(* ------------------------------------------------------------------ *)

let test_soak () =
  let socket = Test_service.tmp_name ".sock" in
  let spool_dir = Test_service.tmp_name ".spool" in
  let metrics = Test_service.tmp_name ".jsonl" in
  drill ~socket ~spool_dir;
  recover_and_audit ~socket ~spool_dir ~metrics;
  phase_storm ();
  phase_response_faults ();
  phase_accept_death ();
  (* the acceptance numbers, asserted *)
  Alcotest.(check bool) (Fmt.str "kills %d >= 10" !kills) true (!kills >= 10);
  Alcotest.(check bool)
    (Fmt.str "malformed frames %d >= 100" !malformed)
    true (!malformed >= 100);
  Alcotest.(check bool)
    (Fmt.str "requests %d >= 200" !requests_sent)
    true
    (!requests_sent >= 200);
  Alcotest.(check bool)
    (Fmt.str "sheds answered structurally (%d)" !sheds_seen)
    true (!sheds_seen >= 1);
  Alcotest.(check bool)
    (Fmt.str "parity checks ran (%d)" !parity_checked)
    true
    (!parity_checked >= 1)

let suite = [ Alcotest.test_case "soak" `Slow test_soak ]
