(** Shared helpers for the test suite. *)

open Chase

let parse = Parser.parse_rules_exn
let parse_rule = Parser.parse_rule_exn
let parse_facts = Parser.parse_database_exn
let fact = Parser.parse_fact_exn

let atom_testable = Alcotest.testable Atom.pp Atom.equal
let term_testable = Alcotest.testable Term.pp Term.equal
let pattern_testable = Alcotest.testable Pattern.pp Pattern.equal

let check_atom = Alcotest.check atom_testable
let check_term = Alcotest.check term_testable

(** Chase the critical instance with a budget; true iff it terminated. *)
let crit_chase_terminates ?(standard = false) ?(budget = 10_000) variant rules =
  let crit = Critical.of_rules ~standard rules in
  let config = { Engine.variant; limits = Limits.of_budget budget } in
  let result = Engine.run ~config rules (Instance.to_list crit) in
  result.Engine.status = Engine.Terminated

(** Run the chase on an explicit database; [limits] overrides the
    budget-derived defaults, [domains] selects the multicore matching
    plane. *)
let chase ?(variant = Variant.Oblivious) ?(budget = 10_000) ?limits ?domains
    rules db =
  let limits =
    match limits with Some l -> l | None -> Limits.of_budget budget
  in
  Engine.run ~config:{ Engine.variant; limits } ?domains rules db

(** True iff the run stopped on a breached limit. *)
let exhausted (result : Engine.result) = Engine.exhausted result

(** The exhaustion reason of a degraded run; fails the test on a
    terminated one. *)
let exhaustion_exn (result : Engine.result) =
  match Engine.exhaustion result with
  | Some reason -> reason
  | None -> Alcotest.fail "expected an exhausted run"

let sorted_facts result = Instance.to_sorted_list result.Engine.instance

(** Read a rule corpus file from data/. *)
let read_data name =
  (* cwd differs between `dune runtest` (test dir) and `dune exec` (root) *)
  let candidates =
    [ Filename.concat "../data" name; Filename.concat "data" name;
      Filename.concat "../../data" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail ("data file not found: " ^ name)
  | Some path ->
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

(** Compare instance contents up to null renaming: both embed in each
    other via constant-fixing homomorphisms. *)
let hom_equivalent i1 i2 =
  Option.is_some (Hom.instance_hom i1 i2)
  && Option.is_some (Hom.instance_hom i2 i1)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
