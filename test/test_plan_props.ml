(** Property tests for the join planner and the planned matcher.

    Hand-rolled deterministic generators (seeded [Random.State], no
    shrinking needed — a failing seed is its own reproducer).  Instance
    sizes straddle the planned matcher's small-instance cutoff so both
    the fallback path and real plans are exercised.

    Pinned properties:
    - every plan is a permutation of the body;
    - a seeded plan places the pinned atom first;
    - the planned matcher enumerates exactly the naive matcher's
      substitution multiset, seeded or not, under any initial binding,
      and under an adversarial explicit plan. *)

open Chase
open Test_util

let subst_testable = Alcotest.testable Subst.pp Subst.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Fixed schema with skewed term distributions: position 0 draws from a
   small constant pool (big buckets), later positions from a larger one
   (small buckets) — so selectivity actually varies across positions. *)
let preds = [| ("p", 2); ("q", 3); ("r", 1); ("s", 2) |]

let const st k = Term.Const (Fmt.str "c%d" (Random.State.int st k))

let gen_fact st =
  let p, n = preds.(Random.State.int st (Array.length preds)) in
  Atom.of_list p (List.init n (fun i -> const st (if i = 0 then 4 else 9)))

let gen_instance st ~atoms =
  let ins = Instance.create () in
  for _ = 1 to atoms do
    ignore (Instance.add ins (gen_fact st))
  done;
  ins

(* Bodies of 2–4 atoms over a shared pool of 4 variables, with repeated
   variables and occasional constants. *)
let gen_body st =
  let n = 2 + Random.State.int st 3 in
  List.init n (fun _ ->
      let p, k = preds.(Random.State.int st (Array.length preds)) in
      Atom.of_list p
        (List.init k (fun _ ->
             if Random.State.float st 1.0 < 0.7 then
               Term.Var (Fmt.str "X%d" (Random.State.int st 4))
             else const st 9)))

(* Instance sizes around the cutoff: tiny, straddling, comfortably above. *)
let size_of_seed seed = [| 10; 50; 64; 80; 200 |].(seed mod 5)

let run_seeds n f =
  for seed = 0 to n - 1 do
    let st = Random.State.make [| 0xBEEF; seed |] in
    f seed st
  done

(* ------------------------------------------------------------------ *)
(* Plan-shape properties                                               *)
(* ------------------------------------------------------------------ *)

let plan_is_permutation () =
  run_seeds 100 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      let n = List.length body in
      let plan = Plan.make ins body in
      Alcotest.(check int)
        (Fmt.str "seed %d: Plan.make is a permutation" seed)
        n
        (Plan.is_permutation plan);
      Alcotest.(check int)
        (Fmt.str "seed %d: plan length" seed)
        n (Plan.length plan);
      for pin = 0 to n - 1 do
        Alcotest.(check int)
          (Fmt.str "seed %d pin %d: Plan.seeded is a permutation" seed pin)
          n
          (Plan.is_permutation (Plan.seeded ins body ~pin))
      done)

let seeded_plan_pins_first () =
  run_seeds 100 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      for pin = 0 to List.length body - 1 do
        let plan = Plan.seeded ins body ~pin in
        Alcotest.(check int)
          (Fmt.str "seed %d: pinned atom is matched first" seed)
          pin
          (Plan.order plan).(0)
      done);
  Alcotest.check_raises "pin out of range"
    (Invalid_argument "Plan.seeded: pin out of range") (fun () ->
      let body = [ Atom.of_list "p" [ Term.Const "c" ] ] in
      ignore (Plan.seeded (Instance.create ()) body ~pin:1))

let plan_atoms_matches_order () =
  run_seeds 50 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      let plan = Plan.make ins body in
      let arr = Array.of_list body in
      Alcotest.(check (list atom_testable))
        (Fmt.str "seed %d: Plan.atoms follows Plan.order" seed)
        (List.map (fun i -> arr.(i)) (Array.to_list (Plan.order plan)))
        (Plan.atoms plan body))

(* ------------------------------------------------------------------ *)
(* Matcher-equivalence properties                                      *)
(* ------------------------------------------------------------------ *)

let collect iter_fn =
  let acc = ref [] in
  iter_fn (fun s -> acc := s :: !acc);
  List.sort Subst.compare !acc

let check_same_subs ctx naive planned =
  Alcotest.(check (list subst_testable)) ctx (collect naive) (collect planned)

let planned_equals_naive () =
  run_seeds 150 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      check_same_subs
        (Fmt.str "seed %d: iter" seed)
        (Hom.iter_naive ins body)
        (Hom.iter_planned ins body))

let planned_equals_naive_with_init () =
  run_seeds 100 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      (* bind one of the pool variables up front *)
      let init = Subst.bind_exn Subst.empty "X0" (const st 9) in
      check_same_subs
        (Fmt.str "seed %d: iter ~init" seed)
        (Hom.iter_naive ~init ins body)
        (Hom.iter_planned ~init ins body))

let seeded_planned_equals_naive () =
  run_seeds 150 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      (* the seed is a fresh fact, as in the engine's delta loop *)
      let seed_fact = gen_fact st in
      ignore (Instance.add ins seed_fact);
      check_same_subs
        (Fmt.str "seed %d: iter_seeded" seed)
        (Hom.iter_seeded_naive ins body ~seed:seed_fact)
        (Hom.iter_seeded_planned ins body ~seed:seed_fact))

(* An explicit plan that differs from the planner's own choice (the last
   body atom forced first): the substitution multiset must not move. *)
let explicit_plan_equals_naive () =
  run_seeds 100 (fun seed st ->
      let ins = gen_instance st ~atoms:(size_of_seed seed) in
      let body = gen_body st in
      let n = List.length body in
      let forced = Plan.seeded ins body ~pin:(n - 1) in
      check_same_subs
        (Fmt.str "seed %d: iter ?plan" seed)
        (Hom.iter_naive ins body)
        (Hom.iter_planned ~plan:forced ins body))

(* The dispatching entry points follow the forced matcher. *)
let dispatch_follows_set_matcher () =
  let saved = Hom.matcher () in
  Fun.protect
    ~finally:(fun () -> Hom.set_matcher saved)
    (fun () ->
      let st = Random.State.make [| 0xD15; 7 |] in
      let ins = gen_instance st ~atoms:120 in
      let body = gen_body st in
      Hom.set_matcher Hom.Naive;
      let via_naive = collect (Hom.iter ins body) in
      Hom.set_matcher Hom.Planned;
      let via_planned = collect (Hom.iter ins body) in
      Alcotest.(check (list subst_testable))
        "dispatched matchers agree" via_naive via_planned;
      Alcotest.(check bool)
        "matcher () reports the override" true
        (Hom.matcher () = Hom.Planned))

let suite =
  [
    Alcotest.test_case "plans are permutations of the body" `Quick
      plan_is_permutation;
    Alcotest.test_case "seeded plans place the pin first" `Quick
      seeded_plan_pins_first;
    Alcotest.test_case "Plan.atoms follows Plan.order" `Quick
      plan_atoms_matches_order;
    Alcotest.test_case "planned iter = naive iter (150 seeds)" `Quick
      planned_equals_naive;
    Alcotest.test_case "planned iter = naive iter under ~init" `Quick
      planned_equals_naive_with_init;
    Alcotest.test_case "planned seeded iter = naive seeded iter" `Quick
      seeded_planned_equals_naive;
    Alcotest.test_case "explicit ?plan preserves the substitution set" `Quick
      explicit_plan_equals_naive;
    Alcotest.test_case "dispatch follows set_matcher" `Quick
      dispatch_follows_set_matcher;
  ]
