(** Tests for the chase engine: variant semantics, model property,
    provenance, budgets, the critical instance. *)

open Chase
open Test_util

(* ------------- basic chase behaviour ------------- *)

let test_example1_shape () =
  (* person(bob) under Example 1, bounded: an initial segment of the
     infinite chase — hasFather/person alternating *)
  let result =
    chase ~budget:10 Families.example1 (parse_facts "person(bob).")
  in
  Alcotest.(check bool) "budget hit" true (exhausted result);
  let facts = sorted_facts result in
  Alcotest.(check bool) "has father fact" true
    (List.exists (fun a -> Atom.pred a = "hasFather") facts);
  Alcotest.(check int) "10 triggers → 21 facts" 21 (List.length facts)

let test_terminating_chase_is_model () =
  let rules =
    parse "emp(X) -> dept(X, Z), mgr(Z). mgr(X) -> emp2(X)."
  in
  let result = chase rules (parse_facts "emp(alice). emp(bob).") in
  Alcotest.(check bool) "terminated" true (result.Engine.status = Engine.Terminated);
  Alcotest.(check bool) "result is a model" true
    (Engine.is_model rules result.Engine.instance)

let test_oblivious_vs_semioblivious_counts () =
  (* p(a,b), p(a,c) under p(X,Y) → ∃Z q(X,Z): oblivious fires twice
     (two homs), semi-oblivious once (same frontier X=a). *)
  let rules = parse "p(X, Y) -> q(X, Z)." in
  let db = parse_facts "p(a, b). p(a, c)." in
  let ob = chase ~variant:Variant.Oblivious rules db in
  let so = chase ~variant:Variant.Semi_oblivious rules db in
  Alcotest.(check int) "oblivious fires per hom" 2 ob.Engine.triggers_applied;
  Alcotest.(check int) "semi-oblivious fires per frontier" 1 so.Engine.triggers_applied;
  Alcotest.(check int) "oblivious two nulls" 2 ob.Engine.nulls_created;
  Alcotest.(check int) "semi-oblivious one null" 1 so.Engine.nulls_created

let test_restricted_blocks_satisfied () =
  (* q(a,b) already satisfies the head for X=a: restricted chase does
     nothing, oblivious still fires. *)
  let rules = parse "p(X) -> q(X, Z)." in
  let db = parse_facts "p(a). q(a, b)." in
  let ob = chase ~variant:Variant.Oblivious rules db in
  let re = chase ~variant:Variant.Restricted rules db in
  Alcotest.(check int) "oblivious fires" 1 ob.Engine.triggers_applied;
  Alcotest.(check int) "restricted skips" 0 re.Engine.triggers_applied;
  Alcotest.(check int) "restricted recorded the skip" 1 re.Engine.triggers_skipped

let test_restricted_terminates_on_separator () =
  (* e(X,Y) → ∃Z e(Y,X)… the symmetric closure rule: restricted chase
     terminates (head satisfied by the produced flip), o/so diverge. *)
  let rules = Families.restricted_separator in
  let db = parse_facts "e(a, b)." in
  Alcotest.(check bool) "restricted terminates" true
    ((chase ~variant:Variant.Restricted rules db).Engine.status = Engine.Terminated);
  Alcotest.(check bool) "oblivious diverges" true
    (exhausted (chase ~variant:Variant.Oblivious ~budget:300 rules db))

let test_fairness_breadth () =
  (* Two independent generators: FIFO must advance both, not starve one. *)
  let rules = parse "a(X) -> a(Z). b(X) -> b(Z)." in
  let result = chase ~budget:100 rules (parse_facts "a(s). b(s).") in
  let count p =
    List.length (Instance.atoms_of_pred result.Engine.instance p)
  in
  Alcotest.(check bool) "both families grow" true (count "a" > 10 && count "b" > 10)

let test_multi_head_shares_null () =
  let rules = parse "p(X) -> q(X, Z), r(Z)." in
  let result = chase rules (parse_facts "p(a).") in
  let q = List.hd (Instance.atoms_of_pred result.Engine.instance "q") in
  let r = List.hd (Instance.atoms_of_pred result.Engine.instance "r") in
  check_term "head atoms share the null" (Atom.arg q 1) (Atom.arg r 0)

let test_set_semantics_dedup () =
  (* the full rule derives an already-present fact: no growth *)
  let rules = parse "p(X, Y) -> p(Y, X)." in
  let result = chase rules (parse_facts "p(a, a).") in
  Alcotest.(check int) "no new facts" 0 result.Engine.atoms_created;
  Alcotest.(check bool) "terminated" true (result.Engine.status = Engine.Terminated)

(* ------------- provenance ------------- *)

let test_provenance_depths () =
  let rules = parse "p(X) -> q(X). q(X) -> r(X)." in
  let result = chase rules (parse_facts "p(a).") in
  Alcotest.(check int) "q at depth 1" 1 (Engine.depth_of result (fact "q(a)"));
  Alcotest.(check int) "r at depth 2" 2 (Engine.depth_of result (fact "r(a)"));
  Alcotest.(check int) "db fact at depth 0" 0 (Engine.depth_of result (fact "p(a)"));
  Alcotest.(check int) "max depth" 2 result.Engine.max_depth

let test_provenance_parents_and_guard () =
  let rules = parse "r(X, Y), m(Y) -> s(Y, Z)." in
  let result = chase rules (parse_facts "r(a, b). m(b).") in
  let s_fact = List.hd (Instance.atoms_of_pred result.Engine.instance "s") in
  match Atom.Tbl.find_opt result.Engine.provenance s_fact with
  | None -> Alcotest.fail "no provenance record"
  | Some d ->
    Alcotest.(check int) "two parents" 2 (List.length (Derivation.parents d));
    (match d.Derivation.guard_parent with
    | Some g -> Alcotest.(check string) "guard image is r" "r" (Atom.pred g)
    | None -> Alcotest.fail "expected guard image");
    Alcotest.(check int) "one null created" 1 (List.length d.Derivation.created_nulls)

(* ------------- budgets ------------- *)

let test_budget_is_respected () =
  let result = chase ~budget:50 Families.example2 (parse_facts "p(a, b).") in
  Alcotest.(check bool) "status budget" true (exhausted result);
  Alcotest.(check bool) "trigger cap honoured" true (result.Engine.triggers_applied <= 50)

(* ------------- limits and graceful degradation ------------- *)

(* Each limit kind on the divergence gallery: the run degrades instead of
   looping, the breach names the limit, and the partial instance is a
   sound prefix — every fact replays from its recorded derivation. *)

let zoo () = Parser.parse_rules_exn (read_data "divergent_zoo.chase")
let zoo_db () = parse_facts "p(a, a). q(a, a). r(a, a). marked(a)."

let check_partial_sound result =
  match Engine.check_provenance result ~db:(zoo_db ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("unsound partial result: " ^ msg)

let degraded_run limits =
  let result = chase ~limits (zoo ()) (zoo_db ()) in
  check_partial_sound result;
  exhaustion_exn result

let test_trigger_budget_breach () =
  let reason = degraded_run (Limits.make ~max_triggers:25 ()) in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Trigger_budget 25 -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check int) "stopped at the cap" 25 reason.Limits.Exhaustion.steps;
  Alcotest.(check bool) "firing table covers all steps" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0
       reason.Limits.Exhaustion.rule_firings
    = 25)

let test_atom_budget_breach () =
  let reason = degraded_run (Limits.make ~max_atoms:40 ()) in
  match reason.Limits.Exhaustion.breach with
  | Limits.Atom_budget 40 -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_null_budget_breach () =
  let reason = degraded_run (Limits.make ~max_nulls:30 ()) in
  match reason.Limits.Exhaustion.breach with
  | Limits.Null_budget 30 -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_depth_budget_breach () =
  let reason = degraded_run (Limits.make ~max_depth:5 ()) in
  match reason.Limits.Exhaustion.breach with
  | Limits.Depth_budget 5 -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b

let test_deadline_breach_fake_clock () =
  (* an injected clock that jumps 10ms per reading: the 5s deadline
     expires after ~500 checks without any real waiting *)
  let t = ref 0. in
  let clock () = t := !t +. 0.01; !t in
  let reason =
    degraded_run (Limits.make ~timeout:5. ~clock ~check_every:1 ())
  in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Deadline 5. -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check bool) "elapsed beyond the deadline" true
    (reason.Limits.Exhaustion.elapsed >= 5.)

let test_cancellation () =
  let cancel = Limits.Cancel.create () in
  Limits.Cancel.cancel ~reason:"user interrupt" cancel;
  let reason = degraded_run (Limits.make ~cancel ()) in
  (match reason.Limits.Exhaustion.breach with
  | Limits.Cancelled (Some "user interrupt") -> ()
  | b -> Alcotest.failf "wrong breach: %a" Limits.pp_breach b);
  Alcotest.(check int) "pre-cancelled: no step taken" 0
    reason.Limits.Exhaustion.steps

let test_dominant_rule_and_null_rate () =
  (* one rule, one null per firing: the diagnostics are deterministic *)
  let rules = parse "z1: p(X, Y) -> p(Y, Z)." in
  let result = chase ~budget:10 rules (parse_facts "p(a, b).") in
  let reason = exhaustion_exn result in
  (match reason.Limits.Exhaustion.dominant_rule with
  | Some ("z1", 10) -> ()
  | Some (r, c) -> Alcotest.failf "wrong dominant rule: %s (%d)" r c
  | None -> Alcotest.fail "no dominant rule");
  Alcotest.(check (float 0.001)) "one null per trigger" 1.0
    reason.Limits.Exhaustion.null_rate;
  Alcotest.(check bool) "diagnosed as diverging" true
    (let d = Limits.Exhaustion.diagnosis reason in
     String.length d >= 9 && String.sub d 0 9 = "diverging")

let test_watchdog_streams () =
  let snaps = ref [] in
  let w = Watchdog.create ~every:16 (fun s -> snaps := s :: !snaps) in
  let config =
    { Engine.variant = Variant.Oblivious; limits = Limits.of_budget 200 }
  in
  let result = Engine.run ~config ~watchdog:w (zoo ()) (zoo_db ()) in
  Alcotest.(check bool) "run degraded" true (Engine.exhausted result);
  Alcotest.(check int) "every 16 steps over 200 triggers" 12
    (Watchdog.emitted w);
  let steps = List.rev_map (fun s -> s.Watchdog.step) !snaps in
  Alcotest.(check (list int)) "snapshots at the cadence"
    (List.init 12 (fun i -> 16 * (i + 1)))
    steps;
  List.iter
    (fun s ->
      Alcotest.(check bool) "meters populated" true
        (s.Watchdog.facts > 0 && s.Watchdog.nulls > 0))
    !snaps

let test_terminating_run_reports_firings () =
  let rules = parse "a: p(X) -> q(X). b: q(X) -> r(X)." in
  let result = chase rules (parse_facts "p(u). p(v).") in
  Alcotest.(check bool) "terminated" true
    (result.Engine.status = Engine.Terminated);
  Alcotest.(check (list (pair string int))) "per-rule firing counts"
    [ ("a", 2); ("b", 2) ]
    (List.sort compare result.Engine.rule_firings);
  Alcotest.(check int) "queue drained" 0 result.Engine.queue_residual;
  match Engine.check_provenance result ~db:(parse_facts "p(u). p(v).") with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("unsound terminating result: " ^ msg)

(* ------------- critical instance ------------- *)

let test_critical_plain () =
  let rules = parse "p(X, Y) -> q(Y)." in
  let crit = Critical.of_rules rules in
  (* p/2 over {*}: 1 fact; q/1: 1 fact *)
  Alcotest.(check int) "two facts" 2 (Instance.cardinal crit)

let test_critical_standard () =
  let rules = parse "p(X, Y) -> q(Y)." in
  let crit = Critical.of_rules ~standard:true rules in
  (* p/2 over {*,0,1}: 9; q/1: 3 *)
  Alcotest.(check int) "twelve facts" 12 (Instance.cardinal crit)

let test_critical_includes_rule_constants () =
  let rules = parse "p(X, c) -> q(X)." in
  let crit = Critical.of_rules rules in
  (* constants {*, c}: p/2 → 4, q/1 → 2 *)
  Alcotest.(check int) "six facts" 6 (Instance.cardinal crit);
  Alcotest.(check bool) "p(✶, c) present" true
    (Instance.mem crit (Atom.of_list "p" [ Critical.star; Term.Const "c" ]))

let test_critical_size_guard () =
  let rules = parse "p(A, B, C, D, E, F, G, H, I, J) -> q(A)." in
  (* 3^10 + 3 facts exceed an explicit cap *)
  Alcotest.(check bool) "refuses oversized instance" true
    (try
       ignore (Critical.of_rules ~standard:true ~max_facts:10_000 rules);
       false
     with Critical.Too_large _ -> true);
  (* and the default cap refuses a truly huge schema *)
  let big = parse "r(A, B, C, D, E, F, G, H, I, J, K, L, M) -> q(A)." in
  Alcotest.(check bool) "default cap engages" true
    (try ignore (Critical.of_rules ~standard:true big); false
     with Critical.Too_large _ -> true)

(* every database maps homomorphically onto the critical instance *)
let critical_absorbs_databases =
  let gen =
    QCheck.Gen.(
      let const = map (fun i -> Term.Const (Fmt.str "c%d" (i mod 4))) small_nat in
      let atom p ar = map (fun ts -> Atom.of_list p ts) (list_repeat ar const) in
      list_size (int_range 1 6) (oneof [ atom "p" 2; atom "q" 1 ]))
  in
  qcheck ~count:100 "critical instance absorbs every database" (QCheck.make gen)
    (fun db ->
      let rules = parse "p(X, Y) -> q(Y)." in
      let crit = Critical.of_rules rules in
      (* map all constants to ✶ *)
      let mapped =
        List.map (Atom.map_terms (fun _ -> Critical.star)) db
      in
      List.for_all (fun a -> Instance.mem crit a) mapped)

let suite =
  [
    Alcotest.test_case "example 1 prefix shape" `Quick test_example1_shape;
    Alcotest.test_case "terminating chase is a model" `Quick
      test_terminating_chase_is_model;
    Alcotest.test_case "oblivious vs semi-oblivious triggers" `Quick
      test_oblivious_vs_semioblivious_counts;
    Alcotest.test_case "restricted blocks satisfied triggers" `Quick
      test_restricted_blocks_satisfied;
    Alcotest.test_case "restricted terminates on separator" `Quick
      test_restricted_terminates_on_separator;
    Alcotest.test_case "FIFO fairness" `Quick test_fairness_breadth;
    Alcotest.test_case "multi-head atoms share nulls" `Quick test_multi_head_shares_null;
    Alcotest.test_case "set semantics dedup" `Quick test_set_semantics_dedup;
    Alcotest.test_case "provenance depths" `Quick test_provenance_depths;
    Alcotest.test_case "provenance parents and guard" `Quick
      test_provenance_parents_and_guard;
    Alcotest.test_case "budgets respected" `Quick test_budget_is_respected;
    Alcotest.test_case "trigger budget: sound partial prefix" `Quick
      test_trigger_budget_breach;
    Alcotest.test_case "atom budget: sound partial prefix" `Quick
      test_atom_budget_breach;
    Alcotest.test_case "null budget: sound partial prefix" `Quick
      test_null_budget_breach;
    Alcotest.test_case "depth budget: sound partial prefix" `Quick
      test_depth_budget_breach;
    Alcotest.test_case "deadline breach (injected clock)" `Quick
      test_deadline_breach_fake_clock;
    Alcotest.test_case "cooperative cancellation" `Quick test_cancellation;
    Alcotest.test_case "dominant rule and null-growth diagnosis" `Quick
      test_dominant_rule_and_null_rate;
    Alcotest.test_case "watchdog snapshot cadence" `Quick test_watchdog_streams;
    Alcotest.test_case "terminating run reports firings" `Quick
      test_terminating_run_reports_firings;
    Alcotest.test_case "critical instance (plain)" `Quick test_critical_plain;
    Alcotest.test_case "critical instance (standard)" `Quick test_critical_standard;
    Alcotest.test_case "critical instance includes rule constants" `Quick
      test_critical_includes_rule_constants;
    Alcotest.test_case "critical instance size guard" `Quick test_critical_size_guard;
    critical_absorbs_databases;
  ]
