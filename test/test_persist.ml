(** Durability subsystem tests: codec roundtrips, journal framing and
    torn-tail tolerance, atomic snapshots, and the acceptance-critical
    crash-determinism property — killing a journaled run after each of
    the first 50 records (through the real write path, via fault
    injection) and resuming yields an instance isomorphic to the
    uninterrupted run's. *)

open Chase
open Test_util

(* ------------------------------------------------------------------ *)
(* Workload: a terminating oblivious chase with 165 trigger
   applications (> 50) and 45 invented nulls over a 9-edge path. *)

let rules () =
  parse "tc: e(X, Y), e(Y, Z) -> e(X, Z).  mk: e(X, Y) -> r(X, W)."

let db () =
  List.init 9 (fun i -> fact (Fmt.str "e(a%d, a%d)" i (i + 1)))

let config variant = { Engine.variant; limits = Limits.of_budget 10_000 }

let tmp_journal =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chase_test_%d_%d.jnl" (Unix.getpid ()) !n)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Session.snapshot_path path ]

(** Run the chase while journaling to [path]; a [fault] simulates a
    crash through the real write path ([Faults.Crash] escapes). *)
let run_journaled ?snapshot_every ?fsync_every ?fault
    ?(variant = Variant.Oblivious) path rules db =
  let session =
    Session.start ~journal:path
      ~snapshot:(Session.snapshot_path path)
      ?snapshot_every ?fsync_every ?fault ~variant ~rules ~db ()
  in
  let result =
    Engine.run ~config:(config variant)
      ~on_trigger:(Session.on_trigger session)
      rules db
  in
  Session.finish session;
  result

let recover_exn ?snapshot ?repair ~variant path rules db =
  match Recovery.recover ?snapshot ?repair ~journal:path ~variant ~rules ~db ()
  with
  | Ok report -> report
  | Error msg -> Alcotest.fail ("recovery failed: " ^ msg)

(** Instances are equal up to null renaming, with matching sizes. *)
let check_isomorphic msg i1 i2 =
  Alcotest.(check int) (msg ^ ": cardinal") (Instance.cardinal i1)
    (Instance.cardinal i2);
  Alcotest.(check int) (msg ^ ": nulls") (Instance.null_count i1)
    (Instance.null_count i2);
  Alcotest.(check bool) (msg ^ ": hom-equivalent") true (hom_equivalent i1 i2)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_crc32 () =
  (* the classic IEEE 802.3 check vector *)
  Alcotest.(check int) "crc32(123456789)" 0xcbf43926
    (Codec.Crc32.digest "123456789");
  Alcotest.(check int) "crc32 empty" 0 (Codec.Crc32.digest "");
  Alcotest.(check int) "crc32 substring" (Codec.Crc32.digest "bc")
    (Codec.Crc32.digest ~pos:1 ~len:2 "abcd")

let term_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Term.Const (Fmt.str "c%d" i)) (int_range 0 30);
        map (fun i -> Term.Var (Fmt.str "X%d" i)) (int_range 0 30);
        map (fun i -> Term.Null i) (int_range 1 100_000);
      ])

let atom_gen =
  QCheck.Gen.(
    map2
      (fun p args -> Atom.of_list (Fmt.str "p%d" p) args)
      (int_range 0 10)
      (list_size (int_range 0 4) term_gen))

let step_gen =
  QCheck.Gen.(
    map
      (fun (step, idx, bindings, depth, nulls, atoms) ->
        {
          Codec.step = step;
          rule_index = idx;
          rule_name = Fmt.str "r%d" idx;
          hom =
            List.fold_left
              (fun s (x, t) ->
                match Subst.bind s x t with Some s' -> s' | None -> s)
              Subst.empty bindings;
          depth;
          created_nulls = List.sort_uniq compare nulls;
          created_atoms = atoms;
        })
      (tup6 (int_range 1 1_000_000) (int_range 0 50)
         (list_size (int_range 0 6)
            (map2 (fun i t -> (Fmt.str "V%d" i, t)) (int_range 0 20) term_gen))
         (int_range 0 64)
         (list_size (int_range 0 4) (int_range 1 100_000))
         (list_size (int_range 0 4) atom_gen)))

let step_equal (a : Codec.step_record) (b : Codec.step_record) =
  a.Codec.step = b.Codec.step
  && a.rule_index = b.rule_index
  && a.rule_name = b.rule_name
  && Subst.equal a.hom b.hom
  && a.depth = b.depth
  && a.created_nulls = b.created_nulls
  && List.length a.created_atoms = List.length b.created_atoms
  && List.for_all2 Atom.equal a.created_atoms b.created_atoms

let step_roundtrip =
  qcheck ~count:300 "step record roundtrips"
    (QCheck.make ~print:(Fmt.to_to_string Codec.pp_step) step_gen)
    (fun sr -> step_equal sr (Codec.decode_step (Codec.encode_step sr)))

let varint_roundtrip =
  qcheck ~count:300 "varint roundtrips"
    QCheck.(int_bound max_int)
    (fun n ->
      let b = Buffer.create 10 in
      Codec.put_varint b n;
      Codec.get_varint (Codec.reader (Buffer.contents b)) = n)

let test_decode_garbage () =
  List.iter
    (fun s ->
      match Codec.decode_step s with
      | _ -> Alcotest.fail "garbage decoded"
      | exception Codec.Corrupt _ -> ())
    [ ""; "\x00"; "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"; "\x01\x02" ]

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_roundtrip () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  let result = run_journaled path rules db in
  Alcotest.(check bool) "terminated" true
    (result.Engine.status = Engine.Terminated);
  (match Journal.read path with
  | Error msg -> Alcotest.fail msg
  | Ok (header, records, tail) ->
    Alcotest.(check bool) "tail clean" true (tail = Journal.Clean);
    Alcotest.(check int) "one record per trigger"
      result.Engine.triggers_applied (List.length records);
    Alcotest.(check (result unit string)) "header matches" (Ok ())
      (Journal.matches header ~variant:Variant.Oblivious ~rules ~db);
    Alcotest.(check bool) "variant mismatch refused" true
      (Result.is_error
         (Journal.matches header ~variant:Variant.Restricted ~rules ~db));
    Alcotest.(check bool) "rules mismatch refused" true
      (Result.is_error
         (Journal.matches header ~variant:Variant.Oblivious
            ~rules:(parse "q: e(X, Y) -> e(Y, X).")
            ~db));
    Alcotest.(check bool) "db mismatch refused" true
      (Result.is_error
         (Journal.matches header ~variant:Variant.Oblivious ~rules
            ~db:[ fact "e(z, z)" ]));
    (* step records are contiguous from 1 *)
    List.iteri
      (fun i sr ->
        Alcotest.(check int) "contiguous step" (i + 1) sr.Codec.step)
      records);
  cleanup path

let test_journal_missing_and_garbage () =
  Alcotest.(check bool) "missing file is an error" true
    (Result.is_error (Journal.read "/nonexistent/journal.jnl"));
  let path = tmp_journal () in
  let oc = open_out_bin path in
  output_string oc "this is not a chase journal at all";
  close_out oc;
  Alcotest.(check bool) "bad magic is an error" true
    (Result.is_error (Journal.read path));
  cleanup path

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_roundtrip () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  let _ = run_journaled ~snapshot_every:10 path rules db in
  let spath = Session.snapshot_path path in
  (match Snapshot.read spath with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    Alcotest.(check int) "snapshot covers the full run" 165
      s.Snapshot.last_step;
    Alcotest.(check int) "records match last_step" s.Snapshot.last_step
      (List.length s.Snapshot.records));
  (* flip one payload byte: the snapshot must become unusable, not lie *)
  let ic = open_in_bin spath in
  let blob = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let corrupted = Bytes.of_string blob in
  let mid = Bytes.length corrupted / 2 in
  Bytes.set corrupted mid (Char.chr (Char.code (Bytes.get corrupted mid) lxor 0xff));
  let oc = open_out_bin spath in
  output_bytes oc corrupted;
  close_out oc;
  Alcotest.(check bool) "corrupted snapshot rejected" true
    (Result.is_error (Snapshot.read spath));
  (* recovery falls back to the journal alone *)
  let report = recover_exn ~snapshot:spath ~variant:Variant.Oblivious path rules db in
  Alcotest.(check int) "journal carries the run" 165
    report.Recovery.resume.Engine.next_step;
  Alcotest.(check int) "snapshot ignored" 0 report.Recovery.snapshot_step;
  cleanup path

(* ------------------------------------------------------------------ *)
(* Crash determinism: the acceptance property *)

let test_crash_determinism () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  Alcotest.(check bool) "baseline terminated" true
    (baseline.Engine.status = Engine.Terminated);
  Alcotest.(check bool) "workload is large enough" true
    (baseline.Engine.triggers_applied > 50);
  for k = 1 to 50 do
    let path = tmp_journal () in
    (match
       run_journaled ~fault:(Faults.Kill_after_record k) ~fsync_every:1 path
         rules db
     with
    | _ -> Alcotest.fail "armed crash did not fire"
    | exception Faults.Crash _ -> ());
    let report = recover_exn ~variant:Variant.Oblivious path rules db in
    Alcotest.(check int)
      (Fmt.str "k=%d: journal holds exactly k records" k)
      k
      (List.length report.Recovery.history);
    Alcotest.(check bool) (Fmt.str "k=%d: tail is clean" k) true
      (report.Recovery.torn = None);
    let resumed =
      Engine.run ~config:(config Variant.Oblivious)
        ~resume:report.Recovery.resume rules db
    in
    Alcotest.(check bool) (Fmt.str "k=%d: resumed run terminated" k) true
      (resumed.Engine.status = Engine.Terminated);
    Alcotest.(check int) (Fmt.str "k=%d: total triggers" k)
      baseline.Engine.triggers_applied resumed.Engine.triggers_applied;
    Alcotest.(check int) (Fmt.str "k=%d: total nulls" k)
      baseline.Engine.nulls_created resumed.Engine.nulls_created;
    check_isomorphic (Fmt.str "k=%d" k) baseline.Engine.instance
      resumed.Engine.instance;
    (match Engine.check_provenance resumed ~db with
    | Ok () -> ()
    | Error msg ->
      Alcotest.fail (Fmt.str "k=%d: provenance check failed: %s" k msg));
    cleanup path
  done

let test_torn_tail_truncation () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  (* tear the k-th record's frame after [bytes] bytes: recovery must
     keep the first k-1 records and truncate the torn tail silently *)
  List.iter
    (fun (k, bytes) ->
      let path = tmp_journal () in
      (match
         run_journaled ~fault:(Faults.Torn_write (k, bytes)) ~fsync_every:1
           path rules db
       with
      | _ -> Alcotest.fail "armed torn write did not fire"
      | exception Faults.Crash _ -> ());
      let report = recover_exn ~variant:Variant.Oblivious path rules db in
      Alcotest.(check int)
        (Fmt.str "k=%d,b=%d: valid prefix" k bytes)
        (k - 1)
        (List.length report.Recovery.history);
      Alcotest.(check bool)
        (Fmt.str "k=%d,b=%d: torn tail detected" k bytes)
        true
        (report.Recovery.torn <> None);
      Alcotest.(check bool)
        (Fmt.str "k=%d,b=%d: journal repaired" k bytes)
        true report.Recovery.repaired;
      (* after repair the journal reads back clean *)
      (match Journal.read path with
      | Ok (_, records, tail) ->
        Alcotest.(check bool) "clean after repair" true (tail = Journal.Clean);
        Alcotest.(check int) "records survive repair" (k - 1)
          (List.length records)
      | Error msg -> Alcotest.fail msg);
      let resumed =
        Engine.run ~config:(config Variant.Oblivious)
          ~resume:report.Recovery.resume rules db
      in
      check_isomorphic
        (Fmt.str "k=%d,b=%d" k bytes)
        baseline.Engine.instance resumed.Engine.instance;
      cleanup path)
    [ (1, 3); (2, 7); (10, 1); (25, 11); (50, 20); (100, 5) ]

let test_snapshot_ahead_of_journal () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  let path = tmp_journal () in
  let _ = run_journaled ~snapshot_every:10 path rules db in
  (* lose most of the journal but keep the (complete) snapshot: recovery
     must prefer the snapshot and rewrite the journal to match it *)
  Journal.truncate_at path 200;
  let report =
    recover_exn
      ~snapshot:(Session.snapshot_path path)
      ~variant:Variant.Oblivious path rules db
  in
  Alcotest.(check int) "snapshot carries the run" 165
    report.Recovery.snapshot_step;
  Alcotest.(check int) "history from the snapshot" 165
    (List.length report.Recovery.history);
  Alcotest.(check bool) "journal rewritten" true report.Recovery.repaired;
  (match Journal.read path with
  | Ok (_, records, tail) ->
    Alcotest.(check bool) "rewritten journal is clean" true
      (tail = Journal.Clean);
    Alcotest.(check int) "rewritten journal holds the history" 165
      (List.length records)
  | Error msg -> Alcotest.fail msg);
  let resumed =
    Engine.run ~config:(config Variant.Oblivious)
      ~resume:report.Recovery.resume rules db
  in
  check_isomorphic "snapshot recovery" baseline.Engine.instance
    resumed.Engine.instance;
  cleanup path

let test_resume_continues_journal () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  let path = tmp_journal () in
  (match
     run_journaled ~fault:(Faults.Kill_after_record 40) ~fsync_every:1 path
       rules db
   with
  | _ -> Alcotest.fail "armed crash did not fire"
  | exception Faults.Crash _ -> ());
  let report = recover_exn ~variant:Variant.Oblivious path rules db in
  let session = Session.continue_ ~journal:path ~fsync_every:1 report in
  let resumed =
    Engine.run ~config:(config Variant.Oblivious)
      ~resume:report.Recovery.resume
      ~on_trigger:(Session.on_trigger session) rules db
  in
  Session.finish session;
  Alcotest.(check bool) "resumed run terminated" true
    (resumed.Engine.status = Engine.Terminated);
  (* the continued journal now records the complete run *)
  (match Journal.read path with
  | Ok (_, records, tail) ->
    Alcotest.(check bool) "continued journal clean" true
      (tail = Journal.Clean);
    Alcotest.(check int) "continued journal is complete"
      baseline.Engine.triggers_applied (List.length records)
  | Error msg -> Alcotest.fail msg);
  (* a second recovery replays the whole run; resuming it is a no-op *)
  let report2 = recover_exn ~variant:Variant.Oblivious path rules db in
  let resumed2 =
    Engine.run ~config:(config Variant.Oblivious)
      ~resume:report2.Recovery.resume rules db
  in
  Alcotest.(check int) "no new triggers on a finished run"
    baseline.Engine.triggers_applied resumed2.Engine.triggers_applied;
  check_isomorphic "doubly recovered" baseline.Engine.instance
    resumed2.Engine.instance;
  cleanup path

let test_restricted_resume () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  (match
     run_journaled ~variant:Variant.Restricted
       ~fault:(Faults.Kill_after_record 10) ~fsync_every:1 path rules db
   with
  | _ -> Alcotest.fail "armed crash did not fire"
  | exception Faults.Crash _ -> ());
  let report = recover_exn ~variant:Variant.Restricted path rules db in
  let resumed =
    Engine.run ~config:(config Variant.Restricted)
      ~resume:report.Recovery.resume rules db
  in
  Alcotest.(check bool) "restricted resume terminated" true
    (resumed.Engine.status = Engine.Terminated);
  Alcotest.(check bool) "restricted resume is a model" true
    (Engine.is_model rules resumed.Engine.instance);
  (match Engine.check_provenance resumed ~db with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("restricted provenance: " ^ msg));
  cleanup path

(* Regression: the resume record carries its counters ([applied_count],
   [created_count]) instead of the engine re-deriving them with
   [List.length] on every resume — and a resumed run's final counters
   must match the uninterrupted run's exactly, at any kill point
   (including a kill after the very last record). *)
let test_resume_counters_exact () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  List.iter
    (fun k ->
      let path = tmp_journal () in
      (match
         run_journaled ~fault:(Faults.Kill_after_record k) ~fsync_every:1 path
           rules db
       with
      | _ -> Alcotest.fail "armed crash did not fire"
      | exception Faults.Crash _ -> ());
      let report = recover_exn ~variant:Variant.Oblivious path rules db in
      let resume = report.Recovery.resume in
      Alcotest.(check int)
        (Fmt.str "k=%d: carried applied_count" k)
        (List.length resume.Engine.applied)
        resume.Engine.applied_count;
      Alcotest.(check int)
        (Fmt.str "k=%d: applied_count = journal records" k)
        k resume.Engine.applied_count;
      Alcotest.(check int)
        (Fmt.str "k=%d: carried created_count" k)
        (List.length resume.Engine.derivations)
        resume.Engine.created_count;
      let resumed =
        Engine.run ~config:(config Variant.Oblivious) ~resume rules db
      in
      Alcotest.(check int)
        (Fmt.str "k=%d: triggers applied match uninterrupted run" k)
        baseline.Engine.triggers_applied resumed.Engine.triggers_applied;
      Alcotest.(check int)
        (Fmt.str "k=%d: atoms created match uninterrupted run" k)
        baseline.Engine.atoms_created resumed.Engine.atoms_created;
      Alcotest.(check int)
        (Fmt.str "k=%d: nulls created match uninterrupted run" k)
        baseline.Engine.nulls_created resumed.Engine.nulls_created;
      cleanup path)
    [ 1; 17; 83; 164; 165 ]

(* ------------------------------------------------------------------ *)
(* Recovery racing a concurrent snapshot: the kill lands while the
   snapshot writer is mid-temp-file and the journal has advanced past
   the last complete snapshot.  The atomic write-temp/rename discipline
   means the visible [.snap] is always either a previous complete
   snapshot or absent — what a kill leaves behind is [.snap.tmp] litter
   (and, on a dying disk, possibly a scribbled [.snap]).  Twenty kill
   points, cycling the litter shapes; recovery must pick the best valid
   prefix every time and never trip over the litter. *)

let scribble path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncate_file path frac =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let keep = in_channel_length ic * frac / 100 in
    let blob = really_input_string ic keep in
    close_in ic;
    scribble path blob
  end

let test_snapshot_race () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  let total = baseline.Engine.triggers_applied in
  for i = 0 to 19 do
    let k = 5 + (8 * i) in
    Alcotest.(check bool) "kill point within the run" true (k < total);
    let path = tmp_journal () in
    let spath = Session.snapshot_path path in
    let tmp = spath ^ ".tmp" in
    (match
       run_journaled ~snapshot_every:8 ~fsync_every:1
         ~fault:(Faults.Kill_after_record k) path rules db
     with
    | _ -> Alcotest.fail "armed crash did not fire"
    | exception Faults.Crash _ -> ());
    (match i mod 4 with
    | 0 ->
      (* killed mid-temp-write: torn [.snap.tmp], [.snap] intact *)
      scribble tmp "CHSNAPSH torn half-way through"
    | 1 ->
      (* killed before the first snapshot ever completed *)
      if Sys.file_exists spath then Sys.remove spath;
      scribble tmp "x"
    | 2 ->
      (* a dying disk scribbled over the visible snapshot *)
      truncate_file spath 33;
      scribble tmp ""
    | _ -> () (* the rename happened; no litter at all *));
    let report =
      recover_exn ~snapshot:spath ~variant:Variant.Oblivious path rules db
    in
    (* the journal held every record (fsync_every:1), so the best valid
       prefix is all k of them regardless of what the snapshot said *)
    Alcotest.(check int)
      (Fmt.str "i=%d k=%d: best valid prefix" i k)
      k
      (List.length report.Recovery.history);
    let resumed =
      Engine.run ~config:(config Variant.Oblivious)
        ~resume:report.Recovery.resume rules db
    in
    Alcotest.(check bool) (Fmt.str "i=%d k=%d: terminated" i k) true
      (resumed.Engine.status = Engine.Terminated);
    check_isomorphic
      (Fmt.str "i=%d k=%d" i k)
      baseline.Engine.instance resumed.Engine.instance;
    if Sys.file_exists tmp then Sys.remove tmp;
    cleanup path
  done

let test_snapshot_race_ahead () =
  (* the complement: the snapshot is complete and AHEAD of a torn
     journal, with temp litter on top — recovery must prefer the
     snapshot's longer prefix and still ignore the litter *)
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  let path = tmp_journal () in
  let spath = Session.snapshot_path path in
  let _ = run_journaled ~snapshot_every:10 path rules db in
  Journal.truncate_at path 200;
  scribble (spath ^ ".tmp") "CHSNAPSH litter from a later racing write";
  let report =
    recover_exn ~snapshot:spath ~variant:Variant.Oblivious path rules db
  in
  Alcotest.(check int) "snapshot prefix wins" 165
    (List.length report.Recovery.history);
  let resumed =
    Engine.run ~config:(config Variant.Oblivious)
      ~resume:report.Recovery.resume rules db
  in
  check_isomorphic "snapshot-ahead race" baseline.Engine.instance
    resumed.Engine.instance;
  Sys.remove (spath ^ ".tmp");
  cleanup path

(* ------------------------------------------------------------------ *)
(* Write-fault composition: independent arming per journal path          *)

let test_faults_compose_same_record () =
  let rules = rules () and db = db () in
  let p1 = tmp_journal () and p2 = tmp_journal () in
  (* Kill_after_record and Torn_write armed together on one stream,
     same record: the torn write must win (the kill would have written
     record 5 in full first, which a torn append precludes) *)
  Faults.Writes.arm p1
    [ Faults.Kill_after_record 5; Faults.Torn_write (5, 4) ];
  Alcotest.(check int) "both faults armed" 2
    (List.length (Faults.Writes.armed_for p1));
  (match run_journaled ~fsync_every:1 p1 rules db with
  | _ -> Alcotest.fail "armed faults did not fire"
  | exception Faults.Crash _ -> ());
  let report = recover_exn ~variant:Variant.Oblivious p1 rules db in
  Alcotest.(check int) "torn beats kill: prefix is 4" 4
    (List.length report.Recovery.history);
  Alcotest.(check bool) "torn tail detected" true
    (report.Recovery.torn <> None);
  (* a second session on an unarmed path is untouched by p1's faults *)
  let r2 = run_journaled ~fsync_every:1 p2 rules db in
  Alcotest.(check bool) "unarmed path unaffected" true
    (r2.Engine.status = Engine.Terminated);
  Faults.Writes.reset ();
  Alcotest.(check int) "reset disarms" 0
    (List.length (Faults.Writes.armed_for p1));
  cleanup p1;
  cleanup p2

let test_faults_compose_ordered () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  (* different records: whichever comes first fires; the other never
     gets the chance *)
  Faults.Writes.arm path
    [ Faults.Torn_write (12, 6); Faults.Kill_after_record 7 ];
  (match run_journaled ~fsync_every:1 path rules db with
  | _ -> Alcotest.fail "armed faults did not fire"
  | exception Faults.Crash _ -> ());
  Faults.Writes.reset ();
  let report = recover_exn ~variant:Variant.Oblivious path rules db in
  Alcotest.(check int) "kill at 7 fired first" 7
    (List.length report.Recovery.history);
  Alcotest.(check bool) "no torn tail" true (report.Recovery.torn = None);
  cleanup path

let test_faults_registry_merges_explicit () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  (* registry faults combine with the explicitly passed one *)
  Faults.Writes.arm path [ Faults.Torn_write (6, 2) ];
  (match
     run_journaled ~fsync_every:1 ~fault:(Faults.Kill_after_record 20) path
       rules db
   with
  | _ -> Alcotest.fail "merged faults did not fire"
  | exception Faults.Crash _ -> ());
  Faults.Writes.reset ();
  let report = recover_exn ~variant:Variant.Oblivious path rules db in
  Alcotest.(check int) "registry torn fired before explicit kill" 5
    (List.length report.Recovery.history);
  Alcotest.(check bool) "torn detected" true (report.Recovery.torn <> None);
  cleanup path

let test_fsync_fail () =
  let rules = rules () and db = db () in
  let baseline = chase rules db in
  let path = tmp_journal () in
  (* a dying disk: the k-th fsync through the writer fails fatally;
     whatever reached the platters before it must still recover *)
  (match
     run_journaled ~fsync_every:1 ~fault:(Faults.Fsync_fail 3) path rules db
   with
  | _ -> Alcotest.fail "fsync fault did not fire"
  | exception Faults.Crash _ -> ());
  let report = recover_exn ~variant:Variant.Oblivious path rules db in
  Alcotest.(check bool) "some prefix survived" true
    (List.length report.Recovery.history >= 1);
  let resumed =
    Engine.run ~config:(config Variant.Oblivious)
      ~resume:report.Recovery.resume rules db
  in
  Alcotest.(check int) "resumed to the full run"
    baseline.Engine.triggers_applied resumed.Engine.triggers_applied;
  check_isomorphic "fsync-fail recovery" baseline.Engine.instance
    resumed.Engine.instance;
  cleanup path

let test_recover_wrong_program () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  let _ = run_journaled path rules db in
  Alcotest.(check bool) "wrong rules refused" true
    (Result.is_error
       (Recovery.recover ~journal:path ~variant:Variant.Oblivious
          ~rules:(parse "q: e(X, Y) -> e(Y, X).")
          ~db ()));
  Alcotest.(check bool) "wrong variant refused" true
    (Result.is_error
       (Recovery.recover ~journal:path ~variant:Variant.Semi_oblivious ~rules
          ~db ()));
  Alcotest.(check bool) "wrong db refused" true
    (Result.is_error
       (Recovery.recover ~journal:path ~variant:Variant.Oblivious ~rules
          ~db:[ fact "e(z, z)" ] ()));
  cleanup path

let test_replay_rejects_tampering () =
  let rules = rules () and db = db () in
  let path = tmp_journal () in
  let _ = run_journaled path rules db in
  match Journal.read path with
  | Error msg -> Alcotest.fail msg
  | Ok (_, records, _) ->
    (* a journal whose recorded creations disagree with what the rules
       actually derive must not replay *)
    let tamper sr =
      { sr with Codec.created_atoms = [ fact "bogus(x)" ] }
    in
    let tampered =
      List.mapi (fun i sr -> if i = 4 then tamper sr else sr) records
    in
    Alcotest.(check bool) "tampered creations rejected" true
      (Result.is_error (Recovery.replay ~rules ~db tampered));
    (* a gap in the step numbering must not replay either *)
    let gappy = List.filteri (fun i _ -> i <> 2) records in
    Alcotest.(check bool) "gappy history rejected" true
      (Result.is_error (Recovery.replay ~rules ~db gappy));
    cleanup path

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32;
    step_roundtrip;
    varint_roundtrip;
    Alcotest.test_case "garbage payloads raise Corrupt" `Quick
      test_decode_garbage;
    Alcotest.test_case "journal roundtrip + identity checks" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "missing/garbage journals are errors" `Quick
      test_journal_missing_and_garbage;
    Alcotest.test_case "snapshot roundtrip + corruption" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "crash at each of the first 50 records" `Slow
      test_crash_determinism;
    Alcotest.test_case "torn tails are truncated, not fatal" `Quick
      test_torn_tail_truncation;
    Alcotest.test_case "snapshot ahead of a lost journal" `Quick
      test_snapshot_ahead_of_journal;
    Alcotest.test_case "resume continues the journal" `Quick
      test_resume_continues_journal;
    Alcotest.test_case "restricted-chase resume" `Quick test_restricted_resume;
    Alcotest.test_case "resume counters match the uninterrupted run" `Quick
      test_resume_counters_exact;
    Alcotest.test_case "wrong program/variant/db refused" `Quick
      test_recover_wrong_program;
    Alcotest.test_case "replay rejects tampered histories" `Quick
      test_replay_rejects_tampering;
    Alcotest.test_case "recovery races a killed snapshot (20 kill points)"
      `Slow test_snapshot_race;
    Alcotest.test_case "snapshot ahead of torn journal, with temp litter"
      `Quick test_snapshot_race_ahead;
    Alcotest.test_case "composed faults on one stream: torn beats kill"
      `Quick test_faults_compose_same_record;
    Alcotest.test_case "composed faults fire in record order" `Quick
      test_faults_compose_ordered;
    Alcotest.test_case "registry faults merge with explicit ones" `Quick
      test_faults_registry_merges_explicit;
    Alcotest.test_case "failed fsync loses nothing already synced" `Quick
      test_fsync_fail;
  ]
