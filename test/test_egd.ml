(** Tests for EGDs: parsing, validation, and the chase with EGDs. *)

open Chase
open Test_util

let parse_full src =
  match Parser.parse_program_full src with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

let test_parse_egd () =
  let p = parse_full "key: dept(D, M1), dept(D, M2) -> M1 = M2." in
  Alcotest.(check int) "one egd" 1 (List.length p.Parser.egds);
  let e = List.hd p.Parser.egds in
  Alcotest.(check string) "name" "key" (Egd.name e);
  Alcotest.(check int) "one equality" 1 (List.length (Egd.equalities e))

let test_parse_mixed_program () =
  let p =
    parse_full
      "p(X) -> q(X, Z). q(X, Y1), q(X, Y2) -> Y1 = Y2. p(a)."
  in
  Alcotest.(check int) "tgd" 1 (List.length p.Parser.tgds);
  Alcotest.(check int) "egd" 1 (List.length p.Parser.egds);
  Alcotest.(check int) "fact" 1 (List.length p.Parser.facts)

let test_parse_errors () =
  let is_err s = Result.is_error (Parser.parse_program_full s) in
  Alcotest.(check bool) "mixed head rejected" true
    (is_err "p(X, Y) -> q(X), X = Y.");
  Alcotest.(check bool) "constant equality rejected" true
    (is_err "p(X) -> X = a.");
  Alcotest.(check bool) "unsafe equality rejected" true
    (is_err "p(X) -> X = Y.");
  Alcotest.(check bool) "old entry point rejects egds" true
    (Result.is_error (Parser.parse_program "p(X, Y) -> X = Y."))

let test_egd_validation () =
  Alcotest.(check bool) "empty equalities rejected" true
    (Result.is_error
       (Egd.make ~body:[ Atom.of_list "p" [ Term.Var "X" ] ] ~equalities:[] ()))

let run_egd_chase src =
  let p = parse_full src in
  Egd_chase.run ~tgds:p.Parser.tgds ~egds:p.Parser.egds p.Parser.facts

let test_functional_dependency_merges_nulls () =
  (* one trigger invents two managers for the same department (the
     restricted chase cannot block within a single head); the key
     constraint then collapses them *)
  let r =
    run_egd_chase
      {|
        pair(X, Y) -> dept(X, M1), dept(Y, M2).
        dept(D, M1), dept(D, M2) -> M1 = M2.
        pair(cs, cs). pair(maths, physics).
      |}
  in
  Alcotest.(check bool) "terminated" true (r.Egd_chase.status = Egd_chase.Terminated);
  (* cs's two invented managers merge into one fact *)
  Alcotest.(check int) "three dept facts" 3
    (List.length (Instance.atoms_of_pred r.Egd_chase.instance "dept"));
  Alcotest.(check bool) "at least one merge happened" true (r.Egd_chase.merges >= 1)

let test_restricted_chase_avoids_most_duplicates () =
  (* the classic employee mapping needs no merging at all under the
     restricted chase: the second trigger is already satisfied *)
  let r =
    run_egd_chase
      {|
        emp(N, D) -> dept(D, M).
        dept(D, M1), dept(D, M2) -> M1 = M2.
        emp(ada, cs). emp(grace, cs). emp(alan, maths).
      |}
  in
  Alcotest.(check bool) "terminated" true (r.Egd_chase.status = Egd_chase.Terminated);
  Alcotest.(check int) "two dept facts" 2
    (List.length (Instance.atoms_of_pred r.Egd_chase.instance "dept"));
  Alcotest.(check int) "no merge needed" 0 r.Egd_chase.merges

let test_constant_conflict_fails () =
  let r =
    run_egd_chase
      {|
        mgr(D, M1), mgr(D, M2) -> M1 = M2.
        mgr(cs, ada). mgr(cs, grace).
      |}
  in
  match r.Egd_chase.status with
  | Egd_chase.Failed _ -> ()
  | Egd_chase.Terminated | Egd_chase.Exhausted _ ->
    Alcotest.fail "expected failure on ada = grace"

let test_egd_triggers_tgd () =
  (* the merge makes a TGD body match that did not exist before *)
  let r =
    run_egd_chase
      {|
        same(X, Y), p(X), q(Y) -> r(X).
        s(X, U1), s(X, U2) -> U1 = U2.
        p(a). q(b).
      |}
  in
  (* no merge possible: r not derivable *)
  Alcotest.(check int) "no r" 0
    (List.length (Instance.atoms_of_pred r.Egd_chase.instance "r"));
  let r2 =
    run_egd_chase
      {|
        e(X, Y) -> h(X, M).
        h(X, M1), h(X, M2) -> M1 = M2.
        h(X, M) -> boss(M).
        e(a, b). e(a, c).
      |}
  in
  Alcotest.(check bool) "terminated" true (r2.Egd_chase.status = Egd_chase.Terminated);
  (* one h-fact for a, hence exactly one boss *)
  Alcotest.(check int) "one boss" 1
    (List.length (Instance.atoms_of_pred r2.Egd_chase.instance "boss"))

let test_result_satisfies_both () =
  let p =
    parse_full
      {|
        emp(N, D) -> dept(D, M).
        dept(D, M) -> works(M, D).
        dept(D, M1), dept(D, M2) -> M1 = M2.
        emp(ada, cs). emp(grace, cs).
      |}
  in
  let r = Egd_chase.run ~tgds:p.Parser.tgds ~egds:p.Parser.egds p.Parser.facts in
  Alcotest.(check bool) "terminated" true (r.Egd_chase.status = Egd_chase.Terminated);
  Alcotest.(check bool) "satisfies TGDs" true
    (Engine.is_model p.Parser.tgds r.Egd_chase.instance);
  Alcotest.(check bool) "satisfies EGDs" true
    (Egd_chase.satisfies_egds p.Parser.egds r.Egd_chase.instance)

let test_egds_only () =
  let r = run_egd_chase "p(X, Y1), p(X, Y2) -> Y1 = Y2. p(a, b)." in
  Alcotest.(check bool) "terminates with no TGDs" true
    (r.Egd_chase.status = Egd_chase.Terminated);
  Alcotest.(check int) "instance unchanged" 1 (Instance.cardinal r.Egd_chase.instance)

let test_egd_roundtrip_print () =
  let p = parse_full "k: p(X, Y1), p(X, Y2) -> Y1 = Y2." in
  let printed = Fmt.str "%a." Egd.pp (List.hd p.Parser.egds) in
  let p2 = parse_full printed in
  Alcotest.(check bool) "roundtrip" true
    (Egd.equal (List.hd p.Parser.egds) (List.hd p2.Parser.egds))

(* randomized: the chase-with-EGDs result, when it terminates, satisfies
   every dependency *)
let egd_chase_sound =
  qcheck ~count:60 "terminating EGD chase satisfies all dependencies"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let tgds = Random_tgds.guarded ~seed () in
      (* a key EGD on the first binary-or-wider predicate, if any *)
      let egds =
        match
          List.find_opt (fun (_, n) -> n >= 2) (Schema.to_list (Schema.of_rules tgds))
        with
        | None -> []
        | Some (p, n) ->
          let vars tag = List.init n (fun i -> Term.Var (Fmt.str "%s%d" tag i)) in
          let a1 = Atom.of_list p (Term.Var "K" :: List.tl (vars "A")) in
          let a2 = Atom.of_list p (Term.Var "K" :: List.tl (vars "B")) in
          [ Egd.make_exn ~body:[ a1; a2 ] ~equalities:[ ("A1", "B1") ] () ]
      in
      let db = Instance.to_list (Critical.generic_of_rules tgds) in
      let config =
        { Egd_chase.default_config with
          Engine.limits = Limits.make ~max_triggers:4_000 ~max_atoms:200_000 () }
      in
      let r = Egd_chase.run ~config ~tgds ~egds db in
      match r.Egd_chase.status with
      | Egd_chase.Terminated ->
        Engine.is_model tgds r.Egd_chase.instance
        && Egd_chase.satisfies_egds egds r.Egd_chase.instance
      | Egd_chase.Failed _ | Egd_chase.Exhausted _ -> true)

let suite =
  [
    Alcotest.test_case "parse egd" `Quick test_parse_egd;
    Alcotest.test_case "parse mixed program" `Quick test_parse_mixed_program;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "egd validation" `Quick test_egd_validation;
    Alcotest.test_case "functional dependency merges nulls" `Quick
      test_functional_dependency_merges_nulls;
    Alcotest.test_case "restricted chase avoids most duplicates" `Quick
      test_restricted_chase_avoids_most_duplicates;
    Alcotest.test_case "constant conflict fails" `Quick test_constant_conflict_fails;
    Alcotest.test_case "egd interacts with tgds" `Quick test_egd_triggers_tgd;
    Alcotest.test_case "result satisfies both" `Quick test_result_satisfies_both;
    Alcotest.test_case "egds only" `Quick test_egds_only;
    Alcotest.test_case "egd print/parse roundtrip" `Quick test_egd_roundtrip_print;
    egd_chase_sound;
  ]
