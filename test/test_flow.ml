(** The Σ-flow framework and its consumers.

    Three layers under test: the position-dataflow substrate ({!Flow} —
    affected positions, may-trigger edges, strata), the two new
    termination conditions built on it ({!Super_weak}, {!Strata}), and
    the engine's static trigger-relevance pruning ({!Relevance}).

    The load-bearing batteries:

    - {e soundness oracle}: on ~100 random guarded sets, every
      sufficient condition that claims termination must agree with the
      exact guarded decision procedure — a claim against a [Diverges]
      verdict would be a soundness bug, not a precision gap;
    - {e lattice inclusions}: weak ⊆ super-weak and joint ⊆ super-weak,
      checked empirically over the same seeds;
    - {e pruning is invisible}: per-rule firing counters (and all run
      counters) are identical with the relevance index on and off, for
      the planned, naive and parallel\@4 legs. *)

open Chase
open Test_util

let with_pruning_off f =
  Relevance.force_disable true;
  Fun.protect ~finally:(fun () -> Relevance.force_disable false) f

let with_matcher m f =
  let saved = Hom.matcher () in
  Hom.set_matcher m;
  Fun.protect ~finally:(fun () -> Hom.set_matcher saved) f

(* ------------------------------------------------------------------ *)
(* Flow substrate                                                      *)
(* ------------------------------------------------------------------ *)

let flow_affected () =
  let rules = parse "p(X) -> q(X, Y).  q(X, Y) -> r(Y)." in
  let flow = Flow.build rules in
  Alcotest.(check (list (pair string int)))
    "nulls land at q[1] and flow to r[0]"
    [ ("q", 1); ("r", 0) ]
    (Flow.affected flow);
  Alcotest.(check bool) "q[0] unaffected" false
    (Flow.Pos_set.mem ("q", 0) (Flow.affected_set flow))

let flow_fires () =
  let rules = parse "p(X) -> q(X, Y).  q(X, Y) -> r(Y).  r(X) -> s(X)." in
  let flow = Flow.build rules in
  Alcotest.(check (list (pair int int)))
    "chain triggers in rule order"
    [ (0, 1); (1, 2) ]
    (Flow.fires flow)

let flow_fires_constants () =
  (* Head constant "a" cannot unify with body constant "b": the edge
     must be refined away even though the predicates match. *)
  let rules = parse "s(X) -> t(a, Y).  t(b, Z) -> s(Z)." in
  let flow = Flow.build rules in
  Alcotest.(check (list (pair int int)))
    "constant-incompatible edge pruned"
    [ (1, 0) ]
    (Flow.fires flow)

let flow_strata () =
  let rules = parse "p(X) -> q(X, Y).  q(X, Y) -> r(Y).  r(X) -> s(X)." in
  let flow = Flow.build rules in
  Alcotest.(check (list (list int)))
    "producers first, one stratum each"
    [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Flow.strata flow);
  Alcotest.(check int) "stratum of the sink" 2 (Flow.stratum_of flow).(2)

let flow_strata_cycle () =
  let rules = parse "p(X, Y) -> p(Y, Z).  p(X, Y) -> q(X)." in
  let flow = Flow.build rules in
  Alcotest.(check (list (list int)))
    "self-feeding rule before its consumer"
    [ [ 0 ]; [ 1 ] ]
    (Flow.strata flow)

let flow_empty () =
  let flow = Flow.build [] in
  Alcotest.(check (list (list int))) "no rules, no strata" [] (Flow.strata flow);
  Alcotest.(check (list (pair int int))) "no edges" [] (Flow.fires flow)

(* ------------------------------------------------------------------ *)
(* Super-weak acyclicity                                               *)
(* ------------------------------------------------------------------ *)

let swa_positive () =
  List.iter
    (fun (name, prog) ->
      Alcotest.(check bool) name true
        (Super_weak.is_super_weakly_acyclic (parse prog)))
    [
      ("weakly acyclic chain", "p(X) -> q(X, Y).  q(X, Y) -> r(Y).");
      (* No frontier variable: the semi-oblivious chase fires the rule
         once in total, so the self-loop on p is harmless. *)
      ("frontierless self-feed", "p(X) -> p(Y).");
      (* Constant refinement: the invented null lands under one head
         constant, the only consumer requires a different one. *)
      ("constant-guarded loop", "s(X) -> t(a, Y).  t(b, Z) -> s(Z).");
      (* Jointly acyclic but not weakly acyclic: q[1]'s null never
         reaches a position feeding Z's landing site. *)
      ( "joint-beyond-weak witness",
        "p(X, Y) -> q(Y, Z).  q(Y, Z), r(Z) -> p(Y, Z)." );
    ]

let swa_negative () =
  match Super_weak.check (parse "p(X, Y) -> p(Y, Z).") with
  | None -> Alcotest.fail "divergent self-feed claimed super-weakly acyclic"
  | Some hops ->
    Alcotest.(check bool) "cycle is non-empty" true (hops <> []);
    List.iter
      (fun (h : Super_weak.hop) ->
        Alcotest.(check int) "single rule in the cycle" 0 h.Super_weak.rule;
        Alcotest.(check (pair string int))
          "null lands at p[1]" ("p", 1) h.Super_weak.landing)
      hops

(* ------------------------------------------------------------------ *)
(* Safe stratification                                                 *)
(* ------------------------------------------------------------------ *)

let strata_safe () =
  (* Not weakly acyclic — the frontier variable X lands next to the
     existential, closing the special cycle s[0] →* t[2] → s[0] in the
     position graph — but the constant refinement (a vs b at t[0])
     breaks the may-trigger edge, so the two rules sit in different
     strata, each weakly acyclic alone. *)
  let rules = parse "s(X) -> t(a, X, Y).  t(b, X, Y) -> s(Y)." in
  Alcotest.(check bool) "not weakly acyclic" false
    (Weak.is_weakly_acyclic rules);
  let s = Strata.compute rules in
  Alcotest.(check bool) "safe" true (s.Strata.cyclic = None);
  Alcotest.(check (list (list int)))
    "consumer stratum first (it feeds s)"
    [ [ 1 ]; [ 0 ] ]
    s.Strata.strata

let strata_unsafe () =
  let s = Strata.compute (parse "p(X, Y) -> p(Y, Z).") in
  Alcotest.(check bool) "cyclic stratum reported" true
    (s.Strata.cyclic = Some [ 0 ])

(* ------------------------------------------------------------------ *)
(* Decide integration                                                  *)
(* ------------------------------------------------------------------ *)

let decide_uses_new_conditions () =
  (* Unguarded (rule 3's body has no atom covering X, Y and Z), not
     weakly acyclic (special cycle s[0] →* t[2] → s[0]) and not jointly
     acyclic (the position-level move closure feeds the frontier of
     rule 1), but the place-level constant refinement (a vs b) shows
     rule 1's nulls can never re-trigger it — [Decide] must resolve the
     set by a flow condition, without falling through to the
     simulation. *)
  let rules =
    parse
      "s(X), u(X) -> t(a, X, Y).  t(b, X, Y) -> s(Y), u(Y).  s(X), t(Y, Y, \
       Z) -> u(X)."
  in
  Alcotest.(check string) "classified unguarded" "unguarded"
    (Classify.cls_to_string (Classify.classify rules));
  Alcotest.(check bool) "not weakly acyclic" false
    (Weak.is_weakly_acyclic rules);
  let v = Decide.check ~variant:Variant.Semi_oblivious rules in
  Alcotest.(check string) "terminates" "terminates"
    (Verdict.answer_to_string (Verdict.answer v));
  Alcotest.(check bool)
    (Fmt.str "by a flow condition (got %s)" v.Verdict.procedure)
    true
    (List.mem v.Verdict.procedure
       [
         "super-weak-acyclicity (sufficient)"; "stratification (sufficient)";
       ])

(* ------------------------------------------------------------------ *)
(* Soundness oracle and lattice inclusions on random guarded sets      *)
(* ------------------------------------------------------------------ *)

let soundness_oracle () =
  for seed = 0 to 99 do
    let rules = Random_tgds.guarded ~seed () in
    let wa = Weak.is_weakly_acyclic rules in
    let ja = Joint.is_jointly_acyclic rules in
    let swa = Super_weak.is_super_weakly_acyclic rules in
    let strat = Strata.is_safe rules in
    let mfa = Mfa.is_mfa ~standard:false ~budget:2_000 rules in
    let rich = Rich.is_richly_acyclic rules in
    (* Inclusions: weak ⊆ joint ⊆ super-weak (Marnette). *)
    if wa then
      Alcotest.(check bool) (Fmt.str "seed %d: wa => swa" seed) true swa;
    if ja then
      Alcotest.(check bool) (Fmt.str "seed %d: ja => swa" seed) true swa;
    (* Soundness: a sufficient condition never contradicts the exact
       guarded procedure.  Rich acyclicity is oblivious-sound; the
       others are semi-oblivious-sound. *)
    let diverges variant =
      Verdict.is_diverging
        (Decide.check ~standard:false ~budget:2_000 ~variant rules)
    in
    if rich then
      Alcotest.(check bool)
        (Fmt.str "seed %d: rich vs oblivious decide" seed)
        false
        (diverges Variant.Oblivious);
    if wa || ja || swa || strat || mfa then
      Alcotest.(check bool)
        (Fmt.str "seed %d: sufficient conditions vs semi-oblivious decide"
           seed)
        false
        (diverges Variant.Semi_oblivious)
  done

(* ------------------------------------------------------------------ *)
(* Pruning is invisible                                                *)
(* ------------------------------------------------------------------ *)

let check_firings_equal ctx (a : Engine.result) (b : Engine.result) =
  Alcotest.(check (list (pair string int)))
    (ctx ^ ": per-rule firings") a.Engine.rule_firings b.Engine.rule_firings;
  Alcotest.(check int)
    (ctx ^ ": triggers applied") a.Engine.triggers_applied
    b.Engine.triggers_applied;
  Alcotest.(check (list atom_testable))
    (ctx ^ ": final instance") (sorted_facts a) (sorted_facts b)

let pruning_preserves_firings () =
  let rules_of_program name =
    match Parser.parse_program (read_data name) with
    | Ok (rules, _facts) -> rules
    | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
  in
  let corpora =
    [
      ("company", rules_of_program "company_mapping.chase");
      ("divergent-zoo", rules_of_program "divergent_zoo.chase");
      ("guarded seed 3", Random_tgds.guarded ~seed:3 ());
      ("guarded seed 17", Random_tgds.guarded ~seed:17 ());
    ]
  in
  List.iter
    (fun (name, rules) ->
      let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
      let legs =
        [
          ("planned", fun () -> chase ~budget:2_000 rules db);
          ( "naive",
            fun () ->
              with_matcher Hom.Naive (fun () -> chase ~budget:2_000 rules db)
          );
          ("parallel@4", fun () -> chase ~budget:2_000 ~domains:4 rules db);
        ]
      in
      List.iter
        (fun (leg, go) ->
          let pruned = go () in
          let unpruned = with_pruning_off go in
          check_firings_equal (Fmt.str "%s [%s]" name leg) pruned unpruned)
        legs)
    corpora

let relevance_unit () =
  let rules = Array.of_list (parse "p(X) -> q(X, Y).  q(X, Y) -> r(Y).") in
  let t = Relevance.build rules in
  (* the pruning-behaviour pins only hold when the environment hasn't
     disabled the index (make check-pruned runs with CHASE_NO_PRUNE=1) *)
  if Relevance.enabled t then begin
    Alcotest.(check (list int))
      "p fact concerns rule 0 only" [ 0 ]
      (Relevance.relevant t (fact "p(a)"));
    Alcotest.(check (list int))
      "q fact concerns rule 1 only" [ 1 ]
      (Relevance.relevant t (fact "q(a, b)"));
    Alcotest.(check (list int))
      "r fact concerns nobody" []
      (Relevance.relevant t (fact "r(a)"));
    (* Constant compatibility, not just predicate overlap. *)
    let t2 = Relevance.build (Array.of_list (parse "p(a, X) -> q(X).")) in
    Alcotest.(check (list int))
      "constant-compatible fact passes" [ 0 ]
      (Relevance.relevant t2 (fact "p(a, x)"));
    Alcotest.(check (list int))
      "constant-incompatible fact pruned" []
      (Relevance.relevant t2 (fact "p(b, x)"))
  end;
  with_pruning_off (fun () ->
      let t3 = Relevance.build rules in
      Alcotest.(check (list int))
        "disabled index returns every rule" [ 0; 1 ]
        (Relevance.relevant t3 (fact "r(a)")))

let seed_order_is_permutation () =
  for seed = 0 to 19 do
    let rules = Array.of_list (Random_tgds.guarded ~seed ()) in
    let order = Relevance.seed_order (Relevance.build rules) in
    Alcotest.(check (list int))
      (Fmt.str "seed %d: permutation of 0..%d" seed (Array.length rules - 1))
      (List.init (Array.length rules) Fun.id)
      (List.sort Int.compare (Array.to_list order))
  done

let suite =
  [
    Alcotest.test_case "flow: affected positions" `Quick flow_affected;
    Alcotest.test_case "flow: may-trigger edges" `Quick flow_fires;
    Alcotest.test_case "flow: constant refinement" `Quick flow_fires_constants;
    Alcotest.test_case "flow: strata" `Quick flow_strata;
    Alcotest.test_case "flow: strata with a cycle" `Quick flow_strata_cycle;
    Alcotest.test_case "flow: empty rule set" `Quick flow_empty;
    Alcotest.test_case "super-weak: positives" `Quick swa_positive;
    Alcotest.test_case "super-weak: witnessed negative" `Quick swa_negative;
    Alcotest.test_case "strata: safe beyond weak" `Quick strata_safe;
    Alcotest.test_case "strata: cyclic stratum" `Quick strata_unsafe;
    Alcotest.test_case "decide: flow conditions close the gap" `Quick
      decide_uses_new_conditions;
    Alcotest.test_case "soundness oracle: 100 guarded seeds" `Slow
      soundness_oracle;
    Alcotest.test_case "pruning: firings unchanged (3 legs)" `Slow
      pruning_preserves_firings;
    Alcotest.test_case "relevance: index unit tests" `Quick relevance_unit;
    Alcotest.test_case "relevance: seed order is a permutation" `Quick
      seed_order_is_permutation;
  ]
