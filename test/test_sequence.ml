(** Tests validating the engine against the paper's §2 definition of
    chase sequences, via the {!Chase.Sequence} capture. *)

open Chase
open Test_util

let test_capture_basic () =
  let rules = parse "p(X) -> q(X). q(X) -> r(X)." in
  let seq, result = Sequence.record ~variant:Variant.Oblivious rules (parse_facts "p(a).") in
  Alcotest.(check bool) "complete" true seq.Sequence.complete;
  Alcotest.(check int) "two steps" 2 (Sequence.length seq);
  Alcotest.(check int) "matches engine count" result.Engine.triggers_applied
    (Sequence.length seq)

let test_instances_monotone () =
  let rules = parse "p(X) -> q(X, Z). q(X, Y) -> r(Y)." in
  let seq, _ = Sequence.record ~variant:Variant.Oblivious rules (parse_facts "p(a). p(b).") in
  let chain = Sequence.instances seq in
  Alcotest.(check int) "one instance per step plus I0"
    (Sequence.length seq + 1) (List.length chain);
  let sizes = List.map List.length chain in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sizes non-decreasing" true (monotone sizes)

let test_clauses_on_named_runs () =
  List.iter
    (fun (name, rules, db) ->
      List.iter
        (fun variant ->
          let seq, _ =
            Sequence.record
              ~config:
                { Engine.variant; limits = Limits.make ~max_triggers:300 ~max_atoms:2_000 () }
              ~variant rules db
          in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: steps valid" name (Variant.to_string variant))
            true (Sequence.steps_are_valid seq);
          Alcotest.(check bool)
            (Fmt.str "%s/%s: no repeated trigger" name (Variant.to_string variant))
            true
            (Sequence.no_repeated_trigger seq))
        [ Variant.Oblivious; Variant.Semi_oblivious; Variant.Restricted ])
    [
      ("example1", Families.example1, parse_facts "person(bob).");
      ("example2", Families.example2, parse_facts "p(a, b).");
      ("tower", Families.guarded_tower ~levels:3,
       Instance.to_list (Critical.of_rules (Families.guarded_tower ~levels:3)));
      ("transitivity", parse "e(X, Y), e(Y, Z) -> e(X, Z).",
       parse_facts "e(a, b). e(b, c). e(c, d).");
    ]

let test_exhaustive_on_terminating () =
  let rules = parse "p(X) -> q(X, Z)." in
  let seq, _ = Sequence.record ~variant:Variant.Semi_oblivious rules (parse_facts "p(a).") in
  Alcotest.(check bool) "exhaustive" true (Sequence.exhaustive seq rules)

(* the paper's clause (ii) as a property over random runs *)
let no_repeat_prop =
  qcheck ~count:100 "engine never applies a trigger twice (paper §2(ii))"
    (QCheck.make QCheck.Gen.(pair small_nat (oneofl Variant.all)))
    (fun (seed, variant) ->
      let rules = Random_tgds.linear ~seed () in
      let db = Instance.to_list (Critical.generic_of_rules rules) in
      let seq, _ =
        Sequence.record
          ~config:
            { Engine.variant;
              limits = Limits.make ~max_triggers:500 ~max_atoms:4_000 () }
          ~variant rules db
      in
      Sequence.no_repeated_trigger seq && Sequence.steps_are_valid seq)

let suite =
  [
    Alcotest.test_case "capture basic" `Quick test_capture_basic;
    Alcotest.test_case "instances monotone" `Quick test_instances_monotone;
    Alcotest.test_case "definition clauses on named runs" `Quick
      test_clauses_on_named_runs;
    Alcotest.test_case "exhaustive on terminating runs" `Quick
      test_exhaustive_on_terminating;
    no_repeat_prop;
  ]
