(** Metamorphic tests: semantics-preserving syntactic transformations of
    a rule set must not change termination verdicts, trigger counts, or
    (up to isomorphism) the chased instance — under either matcher.

    Transformations: predicate renaming, body-atom reordering, variable
    renaming.  Each is a bijective recoding the chase cannot observe, so
    any behavioural difference is a bug in an index, the planner, or a
    variant key. *)

open Chase
open Test_util

let with_matcher m f =
  let saved = Hom.matcher () in
  Hom.set_matcher m;
  Fun.protect ~finally:(fun () -> Hom.set_matcher saved) f

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let rename_atom_pred f a = Atom.of_list (f (Atom.pred a)) (Array.to_list (Atom.args a))

let map_rule fbody fhead r =
  Tgd.make_exn ~name:(Tgd.name r)
    ~body:(fbody (Tgd.body r))
    ~head:(fhead (Tgd.head r))
    ()

let rename_preds rules =
  let f p = "m_" ^ p in
  List.map
    (map_rule
       (List.map (rename_atom_pred f))
       (List.map (rename_atom_pred f)))
    rules

let reorder_bodies rules = List.map (map_rule List.rev Fun.id) rules

let rename_vars rules =
  let f = function Term.Var v -> Term.Var ("v_" ^ v) | t -> t in
  let on_atoms = List.map (Atom.map_terms f) in
  List.map (map_rule on_atoms on_atoms) rules

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let variants = [ Variant.Oblivious; Variant.Semi_oblivious; Variant.Restricted ]

let crit_run ~variant ~budget rules =
  chase ~variant ~budget rules
    (Instance.to_list (Critical.of_rules ~standard:false rules))

(* [fact_map] recodes the original run's facts into the transformed
   vocabulary so instances can be compared; [Fun.id] when the
   transformation does not touch ground facts. *)
let check_transformation name transform fact_map rules =
  let rules' = transform rules in
  List.iter
    (fun m ->
      with_matcher m (fun () ->
          List.iter
            (fun variant ->
              let ctx =
                Fmt.str "%s %a %s" name Variant.pp variant
                  (match m with Hom.Planned -> "planned" | Hom.Naive -> "naive")
              in
              let r = crit_run ~variant ~budget:800 rules in
              let r' = crit_run ~variant ~budget:800 rules' in
              Alcotest.(check int)
                (ctx ^ ": triggers applied") r.Engine.triggers_applied
                r'.Engine.triggers_applied;
              Alcotest.(check int)
                (ctx ^ ": triggers skipped") r.Engine.triggers_skipped
                r'.Engine.triggers_skipped;
              Alcotest.(check bool)
                (ctx ^ ": same status") true
                (exhausted r = exhausted r');
              (* the engine canonicalises trigger order, so the recoded
                 runs are literally identical, nulls included — stronger
                 than the isomorphism the transformation guarantees *)
              Alcotest.(check (list atom_testable))
                (ctx ^ ": recoded instance")
                (List.sort Atom.compare
                   (List.map fact_map (Instance.to_list r.Engine.instance)))
                (sorted_facts r');
              if Instance.cardinal r.Engine.instance <= 40 then
                Alcotest.(check bool)
                  (ctx ^ ": isomorphic instances") true
                  (hom_equivalent
                     (Instance.of_list
                        (List.map fact_map
                           (Instance.to_list r.Engine.instance)))
                     r'.Engine.instance))
            variants))
    [ Hom.Naive; Hom.Planned ]

let check_verdicts name transform rules =
  let rules' = transform rules in
  List.iter
    (fun m ->
      with_matcher m (fun () ->
          List.iter
            (fun variant ->
              let verdict rs =
                Verdict.answer_to_string
                  (Verdict.answer
                     (Decide.check ~standard:false ~budget:1_500 ~variant rs))
              in
              Alcotest.(check string)
                (Fmt.str "%s: %a verdict" name Variant.pp variant)
                (verdict rules) (verdict rules'))
            [ Variant.Oblivious; Variant.Semi_oblivious ]))
    [ Hom.Naive; Hom.Planned ]

(* ------------------------------------------------------------------ *)
(* Corpora: named families plus seeded random sets                     *)
(* ------------------------------------------------------------------ *)

let corpus =
  [
    ("example1", Families.example1);
    ("separator", Families.separator);
    ("restricted-separator", Families.restricted_separator);
    ("guarded-divergent-2", Families.guarded_divergent ~arity:2);
    ("sl-cycle-benign-3", Families.sl_cycle_benign 3);
    ("wide-body-4", Families.wide_body ~width:4);
  ]
  @ List.init 10 (fun seed ->
        (Fmt.str "linear seed %d" seed, Random_tgds.linear ~seed ()))
  @ List.init 10 (fun seed ->
        (Fmt.str "guarded seed %d" seed, Random_tgds.guarded ~seed ()))

let on_corpus f () = List.iter (fun (name, rules) -> f name rules) corpus

let pred_renaming_runs =
  on_corpus (fun name rules ->
      check_transformation
        (name ^ "/rename-preds") rename_preds
        (rename_atom_pred (fun p -> "m_" ^ p))
        rules)

let body_reordering_runs =
  on_corpus (fun name rules ->
      check_transformation (name ^ "/reorder-body") reorder_bodies Fun.id rules)

let var_renaming_runs =
  on_corpus (fun name rules ->
      check_transformation (name ^ "/rename-vars") rename_vars Fun.id rules)

let pred_renaming_verdicts =
  on_corpus (fun name rules ->
      check_verdicts (name ^ "/rename-preds") rename_preds rules)

let body_reordering_verdicts =
  on_corpus (fun name rules ->
      check_verdicts (name ^ "/reorder-body") reorder_bodies rules)

let var_renaming_verdicts =
  on_corpus (fun name rules ->
      check_verdicts (name ^ "/rename-vars") rename_vars rules)

let suite =
  [
    Alcotest.test_case "predicate renaming preserves runs" `Quick
      pred_renaming_runs;
    Alcotest.test_case "body-atom reordering preserves runs" `Quick
      body_reordering_runs;
    Alcotest.test_case "variable renaming preserves runs" `Quick
      var_renaming_runs;
    Alcotest.test_case "predicate renaming preserves verdicts" `Slow
      pred_renaming_verdicts;
    Alcotest.test_case "body-atom reordering preserves verdicts" `Slow
      body_reordering_verdicts;
    Alcotest.test_case "variable renaming preserves verdicts" `Slow
      var_renaming_verdicts;
  ]
