(** Differential oracle: the planned matcher against the naive reference,
    and the multicore parallel chase against both.

    The engine canonicalises trigger discovery (each discovery event's
    homomorphisms are sorted before enqueueing, and the parallel plane
    merges shard results back in canonical event order), so a chase run
    depends only on the substitution {e sets} the matcher produces —
    naive, planned, parallel and relevance-pruned runs must therefore be
    literally identical, null stamps and all, not merely isomorphic
    (pruning only skips discovery events that provably yield no
    substitutions).  This suite pins that four ways on ~200 seeded
    random rule sets across generator
    profiles (varying arity, repeated body variables, constants in
    bodies), for every chase variant and for 2- and 4-domain parallel
    runs, and on the end-to-end [Decide] verdicts for a subset. *)

open Chase
open Test_util

let with_matcher m f =
  let saved = Hom.matcher () in
  Hom.set_matcher m;
  Fun.protect ~finally:(fun () -> Hom.set_matcher saved) f

let with_pruning_off f =
  Relevance.force_disable true;
  Fun.protect ~finally:(fun () -> Relevance.force_disable false) f

(** Run the critical-instance chase under both matchers, plus the planned
    matcher fanned across 2 and 4 domains, plus the planned matcher with
    the trigger-relevance index disabled. *)
let run_all ~variant ~budget rules =
  let db = Instance.to_list (Critical.of_rules ~standard:false rules) in
  let go ?domains m =
    with_matcher m (fun () -> chase ~variant ~budget ?domains rules db)
  in
  ( go Hom.Naive,
    go Hom.Planned,
    go ~domains:2 Hom.Planned,
    go ~domains:4 Hom.Planned,
    with_pruning_off (fun () -> go Hom.Planned) )


let check_identical ctx (rn : Engine.result) (rp : Engine.result) =
  Alcotest.(check (list atom_testable))
    (ctx ^ ": final instance") (sorted_facts rn) (sorted_facts rp);
  Alcotest.(check int)
    (ctx ^ ": triggers applied") rn.Engine.triggers_applied
    rp.Engine.triggers_applied;
  Alcotest.(check int)
    (ctx ^ ": triggers skipped") rn.Engine.triggers_skipped
    rp.Engine.triggers_skipped;
  Alcotest.(check int)
    (ctx ^ ": atoms created") rn.Engine.atoms_created rp.Engine.atoms_created;
  Alcotest.(check int)
    (ctx ^ ": nulls created") rn.Engine.nulls_created rp.Engine.nulls_created;
  Alcotest.(check bool)
    (ctx ^ ": same status") true
    (Engine.exhausted rn = Engine.exhausted rp);
  (* Isomorphism is implied by equality; still exercise the hom check on
     small instances as an independent witness. *)
  if Instance.cardinal rn.Engine.instance <= 40 then
    Alcotest.(check bool)
      (ctx ^ ": hom-equivalent") true
      (hom_equivalent rn.Engine.instance rp.Engine.instance)

let variants = [ Variant.Oblivious; Variant.Semi_oblivious; Variant.Restricted ]

let differential_family name gen ~seeds ~budget () =
  for seed = 0 to seeds - 1 do
    let rules = gen ~seed in
    List.iter
      (fun variant ->
        let rn, rp, r2, r4, ru = run_all ~variant ~budget rules in
        let ctx which =
          Fmt.str "%s seed %d %a [%s]" name seed Variant.pp variant which
        in
        check_identical (ctx "planned") rn rp;
        check_identical (ctx "parallel@2") rn r2;
        check_identical (ctx "parallel@4") rn r4;
        check_identical (ctx "unpruned") rn ru)
      variants
  done

let open_profile = { Random_tgds.default_profile with simple = false }

let families =
  [
    ( "simple-linear", 40, 800,
      fun ~seed -> Random_tgds.simple_linear ~seed () );
    ("linear", 40, 800, fun ~seed -> Random_tgds.linear ~seed ());
    ( "linear-wide", 30, 600,
      fun ~seed ->
        Random_tgds.linear ~seed
          ~profile:
            { open_profile with Random_tgds.max_arity = 4; n_rules = 4 }
          () );
    ( "linear-constants", 30, 600,
      fun ~seed ->
        Random_tgds.linear ~seed
          ~profile:{ open_profile with Random_tgds.constant_bias = 0.3 }
          () );
    ("guarded", 40, 600, fun ~seed -> Random_tgds.guarded ~seed ());
    ( "guarded-constants", 20, 500,
      fun ~seed ->
        Random_tgds.guarded ~seed
          ~profile:
            {
              open_profile with
              Random_tgds.constant_bias = 0.25;
              max_body = 3;
              max_arity = 4;
            }
          () );
  ]

(* The end-to-end decision procedure must give the same verdict under
   either matcher and under the parallel matching plane: its budgeted
   chases are deterministic per matcher and matcher-independent by the
   identity above, and parallel runs are bit-identical to sequential
   ones.  [Decide] picks up the domain count from the process default,
   so the parallel leg goes through [Parallel.set_domains] — exactly the
   path the CLIs' [--domains] uses. *)
let with_domains d f =
  let saved = Parallel.default_domains () in
  Parallel.set_domains d;
  Fun.protect ~finally:(fun () -> Parallel.set_domains saved) f

let decide_agreement () =
  let check_verdicts name rules =
    let verdict ?domains m =
      with_matcher m (fun () ->
          let go () =
            Verdict.answer_to_string
              (Verdict.answer
                 (Decide.check ~standard:false ~budget:2_000
                    ~variant:Variant.Semi_oblivious rules))
          in
          match domains with Some d -> with_domains d go | None -> go ())
    in
    Alcotest.(check string) name (verdict Hom.Naive) (verdict Hom.Planned);
    Alcotest.(check string)
      (name ^ " [parallel@4]")
      (verdict Hom.Naive)
      (verdict ~domains:4 Hom.Planned)
  in
  for seed = 0 to 24 do
    check_verdicts
      (Fmt.str "linear seed %d" seed)
      (Random_tgds.linear ~seed ());
    check_verdicts
      (Fmt.str "guarded seed %d" seed)
      (Random_tgds.guarded ~seed ())
  done

(* A handcrafted divergent set exercises the exhausted path explicitly:
   the budget-truncated prefixes must agree too. *)
let exhausted_prefixes_agree () =
  let rules = parse "e(X, Y) -> e(Y, Z).  e(X, Y), e(Y, Z) -> e(X, Z)." in
  List.iter
    (fun variant ->
      let rn, rp, r2, r4, ru = run_all ~variant ~budget:300 rules in
      (* the restricted chase terminates here (the critical instance
         already satisfies both heads); o and so exhaust the budget *)
      if variant <> Variant.Restricted then
        Alcotest.(check bool)
          (Fmt.str "%a: exhausted" Variant.pp variant)
          true (exhausted rn);
      check_identical (Fmt.str "divergent %a" Variant.pp variant) rn rp;
      check_identical (Fmt.str "divergent %a parallel@2" Variant.pp variant)
        rn r2;
      check_identical (Fmt.str "divergent %a parallel@4" Variant.pp variant)
        rn r4;
      check_identical (Fmt.str "divergent %a unpruned" Variant.pp variant)
        rn ru)
    variants

let suite =
  List.map
    (fun (name, seeds, budget, gen) ->
      Alcotest.test_case
        (Fmt.str "naive = planned = parallel@2,4: %s (%d seeds, all variants)"
           name seeds)
        `Slow
        (differential_family name gen ~seeds ~budget))
    families
  @ [
      Alcotest.test_case
        "naive = planned = parallel: Decide verdicts (50 sets)" `Slow
        decide_agreement;
      Alcotest.test_case
        "naive = planned = parallel: budget-truncated prefixes" `Quick
        exhausted_prefixes_agree;
    ]
