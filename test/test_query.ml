(** Tests for conjunctive queries: evaluation, certain answers,
    containment (plain and under TGDs). *)

open Chase
open Test_util

(* build query bodies by parsing a rule whose body is the CQ *)
let query_of ?name ~vars src =
  let r = Parser.parse_rule_exn (src ^ " -> internal_dummy(A0)") in
  Query.make_exn ?name ~answer_vars:vars (Tgd.body r)

let test_safety () =
  Alcotest.(check bool) "unsafe query rejected" true
    (Result.is_error
       (Query.make ~answer_vars:[ "Y" ]
          [ Atom.of_list "p" [ Term.Var "X" ] ]))

let test_evaluation () =
  let ins = Instance.of_list (parse_facts "e(a, b). e(b, c). e(a, c).") in
  let reach = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(Y, Z)" in
  let answers = Query.answers reach ins in
  Alcotest.(check int) "one 2-path" 1 (List.length answers);
  Alcotest.(check bool) "a to c" true
    (List.hd answers = [ Term.Const "a"; Term.Const "c" ])

let test_certain_answers_filter_nulls () =
  let rules = parse "p(X) -> q(X, Z)." in
  let result = chase rules (parse_facts "p(a).") in
  let all_q = query_of ~vars:[ "Y" ] "q(X, Y)" in
  Alcotest.(check int) "one answer with a null" 1
    (List.length (Query.answers all_q result.Engine.instance));
  Alcotest.(check int) "no certain constant answer" 0
    (List.length (Query.certain_answers all_q result.Engine.instance))

let test_boolean () =
  let ins = Instance.of_list (parse_facts "p(a). q(a).") in
  Alcotest.(check bool) "holds" true
    (Query.holds (query_of ~vars:[] "p(X), q(X)") ins);
  Alcotest.(check bool) "fails" false
    (Query.holds (query_of ~vars:[] "p(X), r(X)") ins)

let test_containment_classic () =
  (* q1(X,Z) ← e(X,Y), e(Y,Z)   ⊆   q2(X,Z) ← e(X,Y), e(Y',Z) *)
  let q1 = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(Y, Z)" in
  let q2 = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(W, Z)" in
  Alcotest.(check bool) "2-path ⊆ loose pair" true (Query.contained_in q1 q2);
  Alcotest.(check bool) "loose pair ⊄ 2-path" false (Query.contained_in q2 q1);
  Alcotest.(check bool) "self containment" true (Query.contained_in q1 q1);
  Alcotest.(check bool) "not equivalent" false (Query.equivalent q1 q2)

let test_containment_under_tgds () =
  (* under transitivity, the 2-path query is contained in the edge query *)
  let rules = parse "e(X, Y), e(Y, Z) -> e(X, Z)." in
  let two_path = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(Y, Z)" in
  let edge = query_of ~vars:[ "X"; "Z" ] "e(X, Z)" in
  let chase_fn ~budget rules db =
    let config =
      {
        Engine.variant = Variant.Semi_oblivious;
        limits = Limits.of_budget budget;
      }
    in
    let r = Engine.run ~config rules db in
    match r.Engine.status with
    | Engine.Terminated -> Some r.Engine.instance
    | Engine.Exhausted _ -> None
  in
  Alcotest.(check (option bool)) "2-path ⊆ edge under transitivity"
    (Some true)
    (Query.contained_in_under ~chase:chase_fn rules two_path edge);
  Alcotest.(check (option bool)) "edge ⊄ 2-path even under transitivity"
    (Some false)
    (Query.contained_in_under ~chase:chase_fn rules edge two_path);
  (* without the rules the containment fails *)
  Alcotest.(check bool) "2-path ⊄ edge classically" false
    (Query.contained_in two_path edge)

let test_containment_budget () =
  let rules = Families.example2 in
  let q1 = query_of ~vars:[ "X" ] "p(X, Y)" in
  let chase_fn ~budget rules db =
    let config =
      {
        Engine.variant = Variant.Semi_oblivious;
        limits = Limits.of_budget budget;
      }
    in
    let r = Engine.run ~config rules db in
    match r.Engine.status with
    | Engine.Terminated -> Some r.Engine.instance
    | Engine.Exhausted _ -> None
  in
  Alcotest.(check (option bool)) "diverging chase gives None" None
    (Query.contained_in_under ~budget:100 ~chase:chase_fn rules q1 q1)

(* randomized: freezing is sound — if q1 ⊆ q2 is reported, then on random
   instances answers(q1) ⊆ answers(q2) *)
let containment_sound =
  let gen = QCheck.Gen.(pair small_nat (list_size (int_range 1 8) (pair (int_range 0 3) (int_range 0 3)))) in
  qcheck ~count:100 "containment decisions are sound on random instances"
    (QCheck.make gen)
    (fun (pick, edges) ->
      let q1 = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(Y, Z)" in
      let q2 = query_of ~vars:[ "X"; "Z" ] "e(X, Y), e(W, Z)" in
      let qa, qb = if pick mod 2 = 0 then (q1, q2) else (q2, q1) in
      let ins =
        Instance.of_list
          (List.map
             (fun (i, j) ->
               Atom.of_list "e"
                 [ Term.Const (Fmt.str "c%d" i); Term.Const (Fmt.str "c%d" j) ])
             edges)
      in
      (not (Query.contained_in qa qb))
      || List.for_all
           (fun t -> List.mem t (Query.answers qb ins))
           (Query.answers qa ins))

let suite =
  [
    Alcotest.test_case "safety check" `Quick test_safety;
    Alcotest.test_case "evaluation" `Quick test_evaluation;
    Alcotest.test_case "certain answers filter nulls" `Quick
      test_certain_answers_filter_nulls;
    Alcotest.test_case "boolean queries" `Quick test_boolean;
    Alcotest.test_case "classic containment" `Quick test_containment_classic;
    Alcotest.test_case "containment under TGDs" `Quick test_containment_under_tgds;
    Alcotest.test_case "containment budget" `Quick test_containment_budget;
    containment_sound;
  ]
