(** The Σ-lint engine: every diagnostic code triggered with its witness
    structurally verified, the corpus kept clean, the explainer kept in
    agreement with {!Decide}, and the whole battery fuzz-hardened. *)

open Chase
open Test_util

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let lint ?explain src =
  match Parser.parse_located src with
  | Error msg -> Alcotest.fail ("parse: " ^ msg)
  | Ok p -> Lint.analyze ?explain (Lint.of_program p)

let diags_of_code code (report : Lint.report) =
  List.filter (fun d -> d.Diagnostic.code = code) report.Lint.diagnostics

let the_diag code report =
  match diags_of_code code report with
  | [ d ] -> d
  | ds ->
    Alcotest.failf "expected exactly one %s, got %d"
      (Diagnostic.code_id code) (List.length ds)

let located rules = List.mapi (fun i r -> (r, i + 1)) rules

(* ------------------------------------------------------------------ *)
(* E001 arity-clash                                                    *)
(* ------------------------------------------------------------------ *)

let test_e001_across_rules () =
  let report = lint "p(X,Y) -> q(X).\nq(X,Y) -> p(Y,X).\n" in
  let d = the_diag Diagnostic.E001 report in
  Alcotest.(check (option int)) "span: second use" (Some 2) d.Diagnostic.line;
  (match d.Diagnostic.witness with
  | Diagnostic.Arity_uses { pred; uses } ->
    Alcotest.(check string) "pred" "q" pred;
    Alcotest.(check (list (pair int int)))
      "arities with first-use lines" [ (1, 1); (2, 2) ] uses
  | _ -> Alcotest.fail "expected an Arity_uses witness");
  Alcotest.(check int) "exit code 2" 2 (Lint.exit_code report);
  (* an unguarded rule is also present, but E001 short-circuits: the
     deeper passes assume a consistent schema *)
  let report2 = lint "a(X,Y), b(Y,Z) -> c(X,Z).\na(X) -> b(X,X).\n" in
  Alcotest.(check int) "only the E001 is reported" 1
    (List.length report2.Lint.diagnostics);
  ignore (the_diag Diagnostic.E001 report2)

let test_e001_rule_vs_fact () =
  let report = lint "p(X) -> r(X).\np(a, b).\n" in
  let d = the_diag Diagnostic.E001 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Arity_uses { pred; uses } ->
    Alcotest.(check string) "pred" "p" pred;
    Alcotest.(check (list (pair int int))) "rule use then fact use"
      [ (1, 1); (2, 2) ] uses
  | _ -> Alcotest.fail "expected an Arity_uses witness");
  (* consistent program: no diagnostic *)
  Alcotest.(check int) "clean when consistent" 0
    (List.length (lint "p(X) -> r(X).\np(a).\n").Lint.diagnostics)

(* ------------------------------------------------------------------ *)
(* W010 unguarded-rule                                                 *)
(* ------------------------------------------------------------------ *)

let test_w010_ancestor_join () =
  let report =
    lint "f5: parent_of(X, Y) -> ancestor_of(X, Y).\nf6: ancestor_of(X, Y), parent_of(Z, X) -> ancestor_of(Z, Y).\n"
  in
  let d = the_diag Diagnostic.W010 report in
  Alcotest.(check (option string)) "named rule" (Some "f6") d.Diagnostic.rule;
  Alcotest.(check (option int)) "line" (Some 2) d.Diagnostic.line;
  (match d.Diagnostic.witness with
  | Diagnostic.Uncovered_vars { rule; vars; candidate } ->
    Alcotest.(check int) "rule index" 1 rule;
    (* both body atoms cover two of the three variables; whichever is
       the candidate, exactly one variable stays uncovered *)
    Alcotest.(check int) "one uncovered variable" 1 (List.length vars);
    Alcotest.(check bool) "has a candidate" true (Option.is_some candidate)
  | _ -> Alcotest.fail "expected an Uncovered_vars witness");
  Alcotest.(check int) "warnings gate exit 1" 1 (Lint.exit_code report)

let test_w010_transitivity () =
  let report = lint "t: e(X, Y), e(Y, Z) -> e(X, Z).\n" in
  let d = the_diag Diagnostic.W010 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Uncovered_vars { vars; candidate; _ } ->
    Alcotest.(check (list term_testable)) "Z uncovered" [ Term.Var "Z" ] vars;
    Alcotest.(check (option atom_testable)) "first maximal candidate"
      (Some (Atom.of_list "e" [ Term.Var "X"; Term.Var "Y" ]))
      candidate
  | _ -> Alcotest.fail "expected an Uncovered_vars witness");
  (* the witness agrees with the classifier on every guarded rule *)
  let guarded = parse "g: q(X,Y), p(Y) -> p(X).\nh: p(X) -> q(X,Z).\n" in
  Alcotest.(check int) "guarded rules produce no W010" 0
    (List.length (Rule_lint.unguarded (located guarded)));
  List.iter
    (fun r ->
      Alcotest.(check (list term_testable)) "empty witness on guarded" []
        (Classify.unguarded_witness r))
    guarded

(* ------------------------------------------------------------------ *)
(* W020 special-edge-cycle (explain battery, Theorem 1 territory)       *)
(* ------------------------------------------------------------------ *)

let test_w020_example2 () =
  let report =
    lint ~explain:[ Variant.Semi_oblivious ] "p(X, Y) -> p(Y, Z).\n"
  in
  let d = the_diag Diagnostic.W020 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Position_cycle { graph; positions } ->
    Alcotest.(check string) "plain dependency graph" "dependency" graph;
    Alcotest.(check bool) "cycle over p positions" true
      (positions <> [] && List.for_all (fun (p, _) -> p = "p") positions)
  | _ -> Alcotest.fail "expected a Position_cycle witness");
  match report.Lint.verdicts with
  | [ (Variant.Semi_oblivious, v) ] ->
    Alcotest.(check bool) "verdict diverges" true (Verdict.is_diverging v)
  | _ -> Alcotest.fail "expected one semi-oblivious verdict"

let test_w020_separator () =
  (* the separator diverges obliviously but terminates semi-obliviously:
     the diagnostic must track the verdict, not just the syntax *)
  let src = "p(X, Y) -> p(X, Z).\n" in
  let o = lint ~explain:[ Variant.Oblivious ] src in
  let d = the_diag Diagnostic.W020 o in
  (match d.Diagnostic.witness with
  | Diagnostic.Position_cycle { graph; _ } ->
    Alcotest.(check string) "extended graph" "extended-dependency" graph
  | _ -> Alcotest.fail "expected a Position_cycle witness");
  let so = lint ~explain:[ Variant.Semi_oblivious ] src in
  Alcotest.(check int) "no diagnostic when terminating" 0
    (List.length so.Lint.diagnostics);
  (match so.Lint.verdicts with
  | [ (_, v) ] ->
    Alcotest.(check bool) "so terminates" true (Verdict.is_terminating v)
  | _ -> Alcotest.fail "expected one verdict");
  (* the pass is also exposed directly *)
  Alcotest.(check int) "direct Plain pass is clean here" 0
    (List.length
       (Graph_lint.dangerous_cycle ~mode:Dep_graph.Plain
          (located (parse src))))

(* ------------------------------------------------------------------ *)
(* W021 realizable-cycle (explain battery, Theorems 2 and 4)            *)
(* ------------------------------------------------------------------ *)

let test_w021_linear_pump () =
  let src = "a: p(X,X) -> q(X,Z).\nb: q(X,Y) -> p(Y,Y).\n" in
  let report = lint ~explain:[ Variant.Semi_oblivious ] src in
  let d = the_diag Diagnostic.W021 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Pump { steps; facts; substitution; laps; start } ->
    Alcotest.(check bool) "nonempty cycle" true (steps <> []);
    Alcotest.(check bool) "rule indices in range" true
      (List.for_all (fun (r, _) -> r >= 0 && r < 2) steps);
    Alcotest.(check int) "one replayed fact per step, plus the start"
      (List.length steps + 1) (List.length facts);
    Alcotest.(check bool) "realizing substitution nonempty" true
      (substitution <> []);
    Alcotest.(check bool) "at least one lap confirmed" true (laps >= 1);
    Alcotest.(check bool) "start pattern rendered" true (start <> "");
    (* the chain is concretely connected: each replayed fact is the
       head instance of its step's rule *)
    List.iteri
      (fun i (rule_idx, head_idx) ->
        let produced = List.nth facts (i + 1) in
        let rule = List.nth (parse src) rule_idx in
        let head = List.nth (Tgd.head rule) head_idx in
        Alcotest.(check string) "replayed fact matches the step's head"
          (Atom.pred head) (Atom.pred produced))
      steps
  | _ -> Alcotest.fail "expected a Pump witness");
  match report.Lint.verdicts with
  | [ (_, v) ] ->
    Alcotest.(check bool) "diverges" true (Verdict.is_diverging v)
  | _ -> Alcotest.fail "expected one verdict"

let test_w021_guarded_chain () =
  let report =
    lint ~explain:[ Variant.Semi_oblivious ]
      "g: h(X,Y), e(Y) -> h(Y,Z), e(Z).\n"
  in
  let d = the_diag Diagnostic.W021 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Guard_chain { occurrences; chain_length } ->
    Alcotest.(check bool) "type recurs" true (List.length occurrences >= 2);
    Alcotest.(check bool) "chain at least as long" true
      (chain_length >= List.length occurrences);
    (match occurrences with
    | a :: rest ->
      Alcotest.(check bool) "same predicate along the chain" true
        (List.for_all (fun b -> Atom.pred b = Atom.pred a) rest)
    | [] -> ())
  | _ -> Alcotest.fail "expected a Guard_chain witness");
  match report.Lint.verdicts with
  | [ (_, v) ] ->
    Alcotest.(check bool) "diverges by guarded-types" true
      (Verdict.is_diverging v)
  | _ -> Alcotest.fail "expected one verdict"

(* ------------------------------------------------------------------ *)
(* I030 unreachable-predicate and I033 dead-rule                        *)
(* ------------------------------------------------------------------ *)

let test_reachability_simple () =
  let report = lint "r1: p(X) -> q(X).\nr2: s(X) -> t(X).\np(a).\n" in
  let d30 = the_diag Diagnostic.I030 report in
  (match d30.Diagnostic.witness with
  | Diagnostic.Unreachable { pred; used_by } ->
    Alcotest.(check string) "s unreachable" "s" pred;
    Alcotest.(check (list int)) "read by r2" [ 1 ] used_by
  | _ -> Alcotest.fail "expected an Unreachable witness");
  let d33 = the_diag Diagnostic.I033 report in
  (match d33.Diagnostic.witness with
  | Diagnostic.Dead_rule { rule; missing } ->
    Alcotest.(check int) "r2 is dead" 1 rule;
    Alcotest.(check (list string)) "missing s" [ "s" ] missing
  | _ -> Alcotest.fail "expected a Dead_rule witness");
  (* without a database the passes say nothing *)
  Alcotest.(check int) "no facts, no reachability verdicts" 0
    (List.length (lint "r1: p(X) -> q(X).\nr2: s(X) -> t(X).\n").Lint.diagnostics)

let test_reachability_propagates () =
  (* u is missing, which kills r1, which in turn starves r2 of w *)
  let report =
    lint "r1: u(X), v(X) -> w(X).\nr2: w(X) -> z(X).\nv(b).\n"
  in
  let unreachable =
    List.filter_map
      (fun d ->
        match d.Diagnostic.witness with
        | Diagnostic.Unreachable { pred; _ } -> Some pred
        | _ -> None)
      report.Lint.diagnostics
  in
  Alcotest.(check (list string)) "u and w unreachable" [ "u"; "w" ]
    (List.sort String.compare unreachable);
  let dead =
    List.filter_map
      (fun d ->
        match d.Diagnostic.witness with
        | Diagnostic.Dead_rule { rule; _ } -> Some rule
        | _ -> None)
      report.Lint.diagnostics
  in
  Alcotest.(check (list int)) "both rules dead" [ 0; 1 ]
    (List.sort compare dead);
  Alcotest.(check int) "infos never gate" 0 (Lint.exit_code report)

(* ------------------------------------------------------------------ *)
(* I031 subsumed-rule                                                  *)
(* ------------------------------------------------------------------ *)

let test_i031_duplicate () =
  let report = lint "a: p(X,Y) -> q(X).\nb: p(U,V) -> q(U).\n" in
  let d = the_diag Diagnostic.I031 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Subsumed_by { rule; by; substitution } ->
    Alcotest.(check int) "the later duplicate is flagged" 1 rule;
    Alcotest.(check int) "kept: the first" 0 by;
    Alcotest.(check bool) "witness substitution recorded" true
      (substitution <> [])
  | _ -> Alcotest.fail "expected a Subsumed_by witness");
  (* different body predicate: no subsumption *)
  Alcotest.(check int) "no false positive" 0
    (List.length (lint "a: p(X,Y) -> q(X).\nb: r(X) -> q(X).\n").Lint.diagnostics)

let test_i031_specialization () =
  (* b's body is a specialization of a's: a derives strictly more *)
  let report = lint "a: p(X,Y) -> q(X).\nb: p(X,X) -> q(X).\n" in
  let d = the_diag Diagnostic.I031 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Subsumed_by { rule; by; _ } ->
    Alcotest.(check int) "the specialization is flagged" 1 rule;
    Alcotest.(check int) "by the general rule" 0 by
  | _ -> Alcotest.fail "expected a Subsumed_by witness");
  (* existential heads: q(X,X) implies exists Z. q(X,Z), so the
     existential rule is the redundant one — direction matters *)
  let report2 = lint "a: p(X) -> q(X,Z).\nb: p(X) -> q(X,X).\n" in
  let d2 = the_diag Diagnostic.I031 report2 in
  (match d2.Diagnostic.witness with
  | Diagnostic.Subsumed_by { rule; by; _ } ->
    Alcotest.(check int) "existential head is subsumed" 0 rule;
    Alcotest.(check int) "by the ground head" 1 by
  | _ -> Alcotest.fail "expected a Subsumed_by witness");
  (* and the exposed checker agrees in both directions *)
  let rules = parse "a: p(X) -> q(X,Z).\nb: p(X) -> q(X,X).\n" in
  let a = List.nth rules 0 and b = List.nth rules 1 in
  Alcotest.(check bool) "b subsumes a" true (Option.is_some (Rule_lint.subsumes b a));
  Alcotest.(check bool) "a does not subsume b" true
    (Option.is_none (Rule_lint.subsumes a b))

(* ------------------------------------------------------------------ *)
(* I032 unused-existential                                             *)
(* ------------------------------------------------------------------ *)

let test_i032_write_only () =
  let report = lint "t: d(X) -> h(X, Y).\n" in
  let d = the_diag Diagnostic.I032 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Unused_existential { rule; var; positions } ->
    Alcotest.(check int) "rule t" 0 rule;
    Alcotest.(check string) "variable Y" "Y" var;
    Alcotest.(check (list (pair string int))) "lands at h[1]"
      [ ("h", 1) ] positions
  | _ -> Alcotest.fail "expected an Unused_existential witness");
  (* a consumer anywhere in the landing predicates silences it *)
  Alcotest.(check int) "consumed existential is clean" 0
    (List.length
       (lint "t: p(X) -> q(X,Y), r(Y).\ns: q(A,B) -> p(A).\n").Lint.diagnostics)

let test_i032_egd_consumer () =
  let report = lint "t2: p(X) -> r(X, Y).\np(a).\n" in
  let d = the_diag Diagnostic.I032 report in
  (match d.Diagnostic.witness with
  | Diagnostic.Unused_existential { var; _ } ->
    Alcotest.(check string) "variable Y" "Y" var
  | _ -> Alcotest.fail "expected an Unused_existential witness");
  (* an EGD body reads r: its key constraint consumes the nulls *)
  Alcotest.(check int) "EGD bodies count as consumers" 0
    (List.length
       (lint "t2: p(X) -> r(X, Y).\nr(X, Y), r(X, Z) -> Y = Z.\np(a).\n")
         .Lint.diagnostics)

(* ------------------------------------------------------------------ *)
(* The corpus stays clean                                              *)
(* ------------------------------------------------------------------ *)

let corpus_files () =
  let dir_candidates = [ "../data"; "data"; "../../data" ]
  and ex_candidates = [ "../examples"; "examples"; "../../examples" ] in
  let files_of candidates =
    match List.find_opt Sys.file_exists candidates with
    | None -> []
    | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".chase")
      |> List.map (Filename.concat dir)
      |> List.sort String.compare
  in
  files_of dir_candidates @ files_of ex_candidates

let read_path path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_clean () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus found" true (List.length files >= 5);
  List.iter
    (fun path ->
      let report = lint (read_path path) in
      Alcotest.(check (list string))
        (path ^ " lints clean") []
        (List.map (fun d -> d.Diagnostic.message) report.Lint.diagnostics))
    files

(* And the deliberately divergent corpus is explained, not whitewashed:
   every diverging verdict carries its causal warning. *)
let test_corpus_explained () =
  let report =
    lint ~explain:[ Variant.Oblivious; Variant.Semi_oblivious ]
      (read_data "divergent_zoo.chase")
  in
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "zoo diverges" true (Verdict.is_diverging v))
    report.Lint.verdicts;
  Alcotest.(check bool) "a causal warning is attached" true
    (List.exists Diagnostic.is_warning report.Lint.diagnostics)

(* ------------------------------------------------------------------ *)
(* Explainer/Decide agreement on seeded rule sets                       *)
(* ------------------------------------------------------------------ *)

let agreement ~variant ~seeds gen =
  List.iter
    (fun seed ->
      let rules = gen ~seed in
      let e = Explain.check ~variant (located rules) in
      let d = Decide.check ~variant rules in
      Alcotest.(check string)
        (Fmt.str "seed %d: explainer answer agrees with Decide" seed)
        (Verdict.answer_to_string (Verdict.answer d))
        (Verdict.answer_to_string (Verdict.answer e.Explain.verdict));
      let has_warning = List.exists Diagnostic.is_warning e.Explain.diagnostics in
      Alcotest.(check bool)
        (Fmt.str "seed %d: warning iff diverging" seed)
        (Verdict.is_diverging e.Explain.verdict)
        has_warning)
    (List.init seeds Fun.id)

let test_agreement_linear_so () =
  agreement ~variant:Variant.Semi_oblivious ~seeds:100 (fun ~seed ->
      Random_tgds.linear ~seed ())

let test_agreement_linear_o () =
  agreement ~variant:Variant.Oblivious ~seeds:30 (fun ~seed ->
      Random_tgds.linear ~seed ())

let test_agreement_guarded_so () =
  agreement ~variant:Variant.Semi_oblivious ~seeds:30 (fun ~seed ->
      Random_tgds.guarded ~seed ())

(* ------------------------------------------------------------------ *)
(* Fuzz: the lint battery never raises                                 *)
(* ------------------------------------------------------------------ *)

let never_raises src =
  match Parser.parse_located src with
  | Error _ -> true
  | Ok p -> (
    match Lint.analyze (Lint.of_program p) with
    | _ -> true
    | exception e ->
      QCheck.Test.fail_reportf "lint raised %s on %S" (Printexc.to_string e)
        src)

let fuzz_token_soup =
  qcheck ~count:500 "lint never raises on token soup"
    (QCheck.make ~print:(Fmt.str "%S") Test_parser_fuzz.token_soup_gen)
    never_raises

let fuzz_mutated_corpora =
  qcheck ~count:200 "lint never raises on mutated corpora"
    (QCheck.make ~print:(Fmt.str "%S") Test_parser_fuzz.mutated_corpus_gen)
    never_raises

let fuzz_random_rules =
  qcheck ~count:200 "lint never raises on seeded rule sets"
    (QCheck.make QCheck.Gen.small_nat) (fun seed ->
      let rules =
        if seed mod 2 = 0 then Random_tgds.guarded ~seed ()
        else Random_tgds.linear ~seed ()
      in
      match Lint.analyze { Lint.rules = located rules; egds = []; facts = [] } with
      | _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "lint raised %s on seed %d"
          (Printexc.to_string e) seed)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "E001 across rules" `Quick test_e001_across_rules;
    Alcotest.test_case "E001 rule vs fact" `Quick test_e001_rule_vs_fact;
    Alcotest.test_case "W010 ancestor join" `Quick test_w010_ancestor_join;
    Alcotest.test_case "W010 transitivity" `Quick test_w010_transitivity;
    Alcotest.test_case "W020 example2" `Quick test_w020_example2;
    Alcotest.test_case "W020 separator" `Quick test_w020_separator;
    Alcotest.test_case "W021 linear pump" `Quick test_w021_linear_pump;
    Alcotest.test_case "W021 guarded chain" `Quick test_w021_guarded_chain;
    Alcotest.test_case "I030/I033 simple" `Quick test_reachability_simple;
    Alcotest.test_case "I030/I033 propagation" `Quick test_reachability_propagates;
    Alcotest.test_case "I031 duplicate" `Quick test_i031_duplicate;
    Alcotest.test_case "I031 specialization" `Quick test_i031_specialization;
    Alcotest.test_case "I032 write-only" `Quick test_i032_write_only;
    Alcotest.test_case "I032 EGD consumer" `Quick test_i032_egd_consumer;
    Alcotest.test_case "corpus lints clean" `Quick test_corpus_clean;
    Alcotest.test_case "divergent corpus is explained" `Slow test_corpus_explained;
    Alcotest.test_case "agreement: linear, so, 100 seeds" `Slow
      test_agreement_linear_so;
    Alcotest.test_case "agreement: linear, o, 30 seeds" `Slow
      test_agreement_linear_o;
    Alcotest.test_case "agreement: guarded, so, 30 seeds" `Slow
      test_agreement_guarded_so;
    fuzz_token_soup;
    fuzz_mutated_corpora;
    fuzz_random_rules;
  ]
