(** The distributed-tracing plane: context minting and parsing, the
    never-raising shard writer, the offline Chrome-trace merge, the
    flight recorder ring, and telemetry snapshot rendering.

    The load-bearing property throughout: observability must never harm
    the observed system.  A sick trace sink turns into a black hole that
    counts drops ({!sick_sink_counts_drops}), and a chase served with a
    fault-injected shard still completes ({!sick_sink_never_blocks}). *)

open Chase

let tmp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chase_trace_%d_%d%s" (Unix.getpid ()) !n suffix)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Context minting and the wire form                                   *)
(* ------------------------------------------------------------------ *)

let test_ids () =
  let id = Tracectx.fresh_id () in
  Alcotest.(check int) "id length" 16 (String.length id);
  Alcotest.(check bool) "id is hex" true (Tracectx.is_hex_id id);
  Alcotest.(check bool) "ids differ" true (Tracectx.fresh_id () <> id);
  let root = Tracectx.genesis () in
  let c = Tracectx.child root in
  Alcotest.(check string) "child keeps the trace" root.Tracectx.trace
    c.Tracectx.trace;
  Alcotest.(check bool) "child gets a fresh span" true
    (c.Tracectx.span <> root.Tracectx.span)

let test_wire_roundtrip () =
  let ctx = Tracectx.genesis () in
  let s = Tracectx.to_string ctx in
  Alcotest.(check int) "wire form is 33 bytes" 33 (String.length s);
  (match Tracectx.of_string s with
  | Some ctx' -> Alcotest.(check bool) "roundtrip" true (ctx = ctx')
  | None -> Alcotest.fail "wire form did not parse");
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Fmt.str "rejects %S" bad) true
        (Tracectx.of_string bad = None))
    [
      "";
      "nonsense";
      "0123456789abcdef";
      "0123456789abcdef_0123456789abcdef";
      "0123456789ABCDEF-0123456789abcdef";
      "0123456789abcde-0123456789abcdef";
      "0123456789abcdef-0123456789abcdef-ff";
    ]

(* ------------------------------------------------------------------ *)
(* The shard writer                                                    *)
(* ------------------------------------------------------------------ *)

let test_shard_write_parse () =
  let path = tmp_name ".jsonl" in
  let w = Tracectx.Shard.open_ ~proc:"test" path in
  let ctx = Tracectx.genesis () in
  let kid = Tracectx.child ctx in
  Tracectx.Shard.span w ~ctx ~name:"root" ~ts_us:1000. ~dur_us:50. ();
  Tracectx.Shard.span w ~ctx:kid ~parent:ctx.Tracectx.span ~name:"child"
    ~ts_us:1010. ~dur_us:20.
    ~args:[ ("op", Chase_obs.Jsonv.String "chase") ]
    ();
  Tracectx.Shard.close w;
  let records =
    String.split_on_char '\n' (read_file path)
    |> List.filter_map Tracectx.parse_shard_line
  in
  (match records with
  | [ r1; r2 ] ->
    Alcotest.(check string) "proc" "test" r1.Tracectx.r_proc;
    Alcotest.(check string) "root name" "root" r1.Tracectx.r_name;
    Alcotest.(check (option string)) "root has no parent" None
      r1.Tracectx.r_parent;
    Alcotest.(check string) "same trace" r1.Tracectx.r_trace
      r2.Tracectx.r_trace;
    Alcotest.(check (option string)) "child parents on root"
      (Some ctx.Tracectx.span) r2.Tracectx.r_parent;
    Alcotest.(check bool) "args survive" true
      (List.mem_assoc "op" r2.Tracectx.r_args)
  | rs -> Alcotest.failf "expected 2 records, parsed %d" (List.length rs));
  Sys.remove path;
  (* torn-tail litter parses to None, silently *)
  Alcotest.(check bool) "torn line skipped" true
    (Tracectx.parse_shard_line {|{"trace":"012345678|} = None)

let test_sick_sink_counts_drops () =
  let path = tmp_name ".jsonl" in
  let sick = ref false in
  let w = Tracectx.Shard.open_ ~check:(fun () -> !sick) ~proc:"test" path in
  let ctx = Tracectx.genesis () in
  Tracectx.Shard.span w ~ctx ~name:"before" ~ts_us:1. ~dur_us:1. ();
  sick := true;
  (* the sink died: writes must neither raise nor block, only count *)
  for i = 1 to 5 do
    Tracectx.Shard.span w ~ctx ~name:(Fmt.str "dropped%d" i) ~ts_us:2.
      ~dur_us:1. ()
  done;
  Alcotest.(check int) "drops counted" 5 (Tracectx.Shard.drops w);
  Tracectx.Shard.close w;
  let kept =
    String.split_on_char '\n' (read_file path)
    |> List.filter_map Tracectx.parse_shard_line
  in
  Alcotest.(check int) "healthy write kept" 1 (List.length kept);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* The offline merge                                                   *)
(* ------------------------------------------------------------------ *)

let test_merge_to_chrome () =
  let module Jsonv = Chase_obs.Jsonv in
  let ctx = Tracectx.genesis () in
  let kid = Tracectx.child ctx in
  let mk ~proc ~pid ~name ~ctx ?parent ~ts () =
    {
      Tracectx.r_trace = ctx.Tracectx.trace;
      r_span = ctx.Tracectx.span;
      r_parent = parent;
      r_name = name;
      r_proc = proc;
      r_pid = pid;
      r_ts_us = ts;
      r_dur_us = 10.;
      r_args = [];
    }
  in
  (* shards arrive interleaved and out of order; two processes *)
  let records =
    [
      mk ~proc:"chased" ~pid:2 ~name:"server.chase" ~ctx:kid
        ~parent:ctx.Tracectx.span ~ts:2000. ();
      mk ~proc:"chasec" ~pid:1 ~name:"client.request" ~ctx ~ts:1000. ();
    ]
  in
  match Tracectx.merge_to_chrome records with
  | Jsonv.List events ->
    let str k ev = Option.bind (Jsonv.member k ev) Jsonv.to_string_opt in
    let xs, ms =
      List.partition (fun ev -> str "ph" ev = Some "X") events
    in
    Alcotest.(check int) "one X event per span" 2 (List.length xs);
    Alcotest.(check int) "one M event per process" 2 (List.length ms);
    List.iter
      (fun m ->
        Alcotest.(check (option string)) "metadata name"
          (Some "process_name") (str "name" m))
      ms;
    (* X events sorted by start time within the trace; args carry ids *)
    (match xs with
    | [ a; b ] ->
      Alcotest.(check (option string)) "client first" (Some "client.request")
        (str "name" a);
      let args ev = Option.value ~default:Jsonv.Null (Jsonv.member "args" ev) in
      Alcotest.(check (option string)) "root trace id"
        (Some ctx.Tracectx.trace)
        (str "trace" (args a));
      Alcotest.(check (option string)) "child parent id"
        (Some ctx.Tracectx.span)
        (str "parent" (args b))
    | _ -> Alcotest.fail "partition lost events")
  | _ -> Alcotest.fail "merge did not produce an array"

(* ------------------------------------------------------------------ *)
(* The flight recorder                                                 *)
(* ------------------------------------------------------------------ *)

let test_flight_ring () =
  Flight.reset ();
  Flight.configure ~path:None;
  let overflow = 7 in
  for i = 1 to Flight.size + overflow do
    Flight.record ~kind:"test" ~name:(Fmt.str "e%d" i) "detail"
  done;
  Alcotest.(check int) "total recorded" (Flight.size + overflow)
    (Flight.recorded ());
  let es = Flight.entries () in
  Alcotest.(check int) "ring keeps the newest [size]" Flight.size
    (List.length es);
  (match es with
  | first :: _ ->
    Alcotest.(check string) "oldest retained entry"
      (Fmt.str "e%d" (overflow + 1))
      first.Flight.name
  | [] -> Alcotest.fail "empty ring");
  (match List.rev es with
  | last :: _ ->
    Alcotest.(check string) "newest entry"
      (Fmt.str "e%d" (Flight.size + overflow))
      last.Flight.name
  | [] -> ());
  (* unconfigured dump is a no-op, not an error *)
  Flight.dump ~reason:"nowhere";
  let path = tmp_name ".flight" in
  Flight.configure ~path:(Some path);
  Flight.dump ~reason:"unit-test";
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "header + retained entries" (Flight.size + 1)
    (List.length lines);
  (match Chase_obs.Jsonv.of_string (List.hd lines) with
  | Ok h ->
    Alcotest.(check (option string)) "dump reason" (Some "unit-test")
      (Option.bind
         (Chase_obs.Jsonv.member "reason" h)
         Chase_obs.Jsonv.to_string_opt)
  | Error m -> Alcotest.failf "dump header is not JSON: %s" m);
  Flight.configure ~path:None;
  Flight.reset ();
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Telemetry snapshots                                                 *)
(* ------------------------------------------------------------------ *)

let test_telemetry_renders () =
  let module Jsonv = Chase_obs.Jsonv in
  let m = Chase_obs.Metrics.create () in
  Chase_obs.Metrics.incr m ~by:3 "svc.requests";
  Chase_obs.Metrics.incr m ~label:"chase" "svc.done";
  Chase_obs.Metrics.set_gauge m "svc.queue_depth" 2.;
  for i = 1 to 100 do
    Chase_obs.Metrics.observe m "svc.latency_s" (float_of_int i /. 100.)
  done;
  let v = Telemetry.snapshot_json ~uptime_s:4.5 m in
  let str k = Option.bind (Jsonv.member k v) Jsonv.to_string_opt in
  Alcotest.(check (option string)) "schema" (Some "chase-telemetry/1")
    (str "schema");
  Alcotest.(check (option string)) "build" (Some Telemetry.build_id)
    (str "build");
  let arr k =
    match Jsonv.member k v with
    | Some (Jsonv.List l) -> l
    | _ -> Alcotest.failf "missing array %S" k
  in
  Alcotest.(check int) "two counters" 2 (List.length (arr "counters"));
  Alcotest.(check int) "one gauge" 1 (List.length (arr "gauges"));
  Alcotest.(check int) "one histogram" 1 (List.length (arr "histograms"));
  (* the JSON string form reparses *)
  (match Jsonv.of_string (Telemetry.json ~uptime_s:4.5 m) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "telemetry JSON does not reparse: %s" msg);
  let prom = Telemetry.prometheus ~uptime_s:4.5 m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Fmt.str "prom mentions %s" needle)
        true (contains prom needle))
    [
      "# TYPE chase_build_info gauge";
      "chase_uptime_seconds 4.5";
      "chase_svc_requests 3";
      "chase_svc_done{label=\"chase\"} 1";
      "chase_svc_latency_s{quantile=\"0.99\"}";
      "chase_svc_latency_s_count 100";
    ]

(* ------------------------------------------------------------------ *)
(* Satellite: a sick trace sink must never block or abort a chase      *)
(* ------------------------------------------------------------------ *)

let test_sick_sink_never_blocks () =
  let socket = tmp_name ".sock" in
  let shard = tmp_name ".jsonl" in
  (* arm the write-fault registry for the shard path: the server's
     shard writer consults it and treats any armed fault as a dead
     disk from the first write on *)
  Faults.Writes.arm shard [ Faults.Fsync_fail 1 ];
  Fun.protect
    ~finally:(fun () ->
      Faults.Writes.disarm shard;
      if Sys.file_exists shard then Sys.remove shard)
    (fun () ->
      let cfg =
        Server.config ~workers:2 ~queue_cap:8 ~trace_shard:shard
          ~default_timeout:20. ~read_timeout:5. socket
      in
      let server = Server.start cfg in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Server.wait server)
        (fun () ->
          let req =
            Proto.request ~file:"t.chase"
              ~program:"tc: e(X, Y), e(Y, Z) -> e(X, Z).\ne(a,b). e(b,c)."
              ~budget:10_000
              ~trace:(Tracectx.to_string (Tracectx.genesis ()))
              Proto.Chase
          in
          match Client.call_retry ~attempts:5 ~base_delay:0.02 ~socket req with
          | Ok (Proto.Ok_response r) ->
            Alcotest.(check int) "chase completed" 0 r.Proto.exit_code;
            Alcotest.(check bool) "derived the closure" true
              (contains r.Proto.stdout "e(a, c)")
          | Ok resp ->
            Alcotest.failf "unexpected response: %a" Proto.pp_response resp
          | Error failure ->
            Alcotest.failf "call failed: %a" Client.pp_failure failure);
      (* the server stayed healthy and dropped the spans silently: the
         shard holds no complete records *)
      let kept =
        if Sys.file_exists shard then
          String.split_on_char '\n' (read_file shard)
          |> List.filter_map Tracectx.parse_shard_line
        else []
      in
      Alcotest.(check int) "spans dropped, not written" 0 (List.length kept))

let suite =
  [
    Alcotest.test_case "ids: mint, child, hex form" `Quick test_ids;
    Alcotest.test_case "wire: roundtrip + strict rejection" `Quick
      test_wire_roundtrip;
    Alcotest.test_case "shard: write, reparse, torn tail" `Quick
      test_shard_write_parse;
    Alcotest.test_case "shard: sick sink counts drops, never raises" `Quick
      test_sick_sink_counts_drops;
    Alcotest.test_case "merge: shards to one Chrome trace" `Quick
      test_merge_to_chrome;
    Alcotest.test_case "flight: bounded ring, dump post-mortem" `Quick
      test_flight_ring;
    Alcotest.test_case "telemetry: JSON + Prometheus render" `Quick
      test_telemetry_renders;
    Alcotest.test_case "service: sick trace sink never blocks a chase" `Quick
      test_sick_sink_never_blocks;
  ]
